#include "src/obs/bus.h"

namespace circus::obs {

EventBus::SubscriberId EventBus::Subscribe(Subscriber fn) {
  const SubscriberId id = next_id_++;
  subscribers_.emplace_back(id, std::move(fn));
  return id;
}

void EventBus::Unsubscribe(SubscriberId id) {
  for (size_t i = 0; i < subscribers_.size(); ++i) {
    if (subscribers_[i].first == id) {
      subscribers_.erase(subscribers_.begin() + static_cast<long>(i));
      return;
    }
  }
}

void EventBus::Publish(Event event) {
  if (subscribers_.empty()) {
    return;
  }
  if (event.time_ns < 0 && clock_) {
    event.time_ns = clock_();
  }
  if (event.incarnation == 0) {
    event.incarnation = incarnation_;
  }
  ++published_;
  // Index loop: a subscriber may subscribe/unsubscribe during delivery.
  for (size_t i = 0; i < subscribers_.size(); ++i) {
    subscribers_[i].second(event);
  }
}

EventLog::EventLog(EventBus* bus) : bus_(bus) {
  if (bus_ != nullptr) {
    id_ = bus_->Subscribe([this](const Event& e) { events_.push_back(e); });
  }
}

EventLog::~EventLog() {
  if (bus_ != nullptr) {
    bus_->Unsubscribe(id_);
  }
}

}  // namespace circus::obs
