#include "src/obs/metrics.h"

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>

namespace circus::obs {

namespace {
constexpr int kZeroBucket = std::numeric_limits<int32_t>::min();

int BucketOf(double value) {
  if (!(value > 0)) {
    return kZeroBucket;
  }
  return static_cast<int>(std::ceil(std::log2(value)));
}

double BucketUpperBound(int bucket) {
  return bucket == kZeroBucket ? 0.0 : std::exp2(bucket);
}
}  // namespace

void Histogram::Observe(double value) {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  ++buckets_[BucketOf(value)];
}

double Histogram::Percentile(double p) const {
  if (count_ == 0) {
    return 0.0;
  }
  if (p < 0) p = 0;
  if (p > 1) p = 1;
  const double target = p * static_cast<double>(count_);
  uint64_t seen = 0;
  for (const auto& [bucket, n] : buckets_) {
    seen += n;
    if (static_cast<double>(seen) >= target) {
      const double bound = BucketUpperBound(bucket);
      return bound > max_ ? max_ : bound;
    }
  }
  return max_;
}

std::vector<std::pair<double, uint64_t>> Histogram::CumulativeBuckets()
    const {
  std::vector<std::pair<double, uint64_t>> out;
  out.reserve(buckets_.size());
  uint64_t seen = 0;
  for (const auto& [bucket, n] : buckets_) {
    seen += n;
    out.emplace_back(BucketUpperBound(bucket), seen);
  }
  return out;
}

void Gauge::Set(double value) {
  const int64_t now = owner_->NowNs();
  if (!initialized_) {
    initialized_ = true;
    first_ns_ = last_ns_ = now;
    min_ = max_ = value;
  } else {
    if (now > last_ns_) {
      integral_ += value_ * static_cast<double>(now - last_ns_);
      last_ns_ = now;
    }
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  value_ = value;
}

double Gauge::MeanUntil(int64_t now_ns) const {
  if (!initialized_) {
    return 0.0;
  }
  double integral = integral_;
  int64_t last = last_ns_;
  if (now_ns > last) {
    integral += value_ * static_cast<double>(now_ns - last);
    last = now_ns;
  }
  if (last == first_ns_) {
    return value_;
  }
  return integral / static_cast<double>(last - first_ns_);
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  auto& slot = counters_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  auto& slot = histograms_[name];
  if (slot == nullptr) {
    slot = std::make_unique<Histogram>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (slot == nullptr) {
    slot.reset(new Gauge(this));
  }
  return slot.get();
}

MetricsRegistry::Snapshot MetricsRegistry::Snap(int64_t time_ns) const {
  Snapshot snap;
  snap.time_ns = time_ns;
  for (const auto& [name, counter] : counters_) {
    snap.counters[name] = counter->value();
  }
  for (const auto& [name, gauge] : gauges_) {
    GaugeStats g;
    g.value = gauge->value();
    g.min = gauge->min();
    g.max = gauge->max();
    g.mean = gauge->MeanUntil(time_ns);
    snap.gauges[name] = g;
  }
  for (const auto& [name, hist] : histograms_) {
    HistogramStats s;
    s.count = hist->count();
    s.sum = hist->sum();
    s.min = hist->min();
    s.max = hist->max();
    s.mean = hist->mean();
    s.p50 = hist->Percentile(0.50);
    s.p90 = hist->Percentile(0.90);
    s.p99 = hist->Percentile(0.99);
    s.buckets = hist->CumulativeBuckets();
    snap.histograms[name] = s;
  }
  return snap;
}

std::string MetricsRegistry::Snapshot::ToString() const {
  std::string out;
  char buf[256];
  std::snprintf(buf, sizeof(buf), "metrics @ %.6fs\n",
                static_cast<double>(time_ns) / 1e9);
  out += buf;
  for (const auto& [name, value] : counters) {
    std::snprintf(buf, sizeof(buf), "  %s = %llu\n", name.c_str(),
                  static_cast<unsigned long long>(value));
    out += buf;
  }
  for (const auto& [name, g] : gauges) {
    std::snprintf(buf, sizeof(buf),
                  "  %s ~ %.3f (min=%.3f max=%.3f avg=%.3f)\n",
                  name.c_str(), g.value, g.min, g.max, g.mean);
    out += buf;
  }
  for (const auto& [name, h] : histograms) {
    std::snprintf(buf, sizeof(buf),
                  "  %s: n=%llu mean=%.3f min=%.3f p50=%.3f p90=%.3f "
                  "p99=%.3f max=%.3f\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  h.mean, h.min, h.p50, h.p90, h.p99, h.max);
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::Snapshot::ToPrometheus() const {
  auto sanitize = [](const std::string& name) {
    std::string out = "circus_";
    for (char c : name) {
      const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                      (c >= '0' && c <= '9') || c == '_';
      out += ok ? c : '_';
    }
    return out;
  };
  // Grown with string appends, never a fixed buffer: one truncated line
  // would corrupt every line after it in the exposition.
  std::string out;
  for (const auto& [name, value] : counters) {
    const std::string metric = sanitize(name) + "_total";
    out += "# TYPE " + metric + " counter\n";
    out += metric + " " + std::to_string(value) + "\n";
  }
  for (const auto& [name, g] : gauges) {
    const std::string metric = sanitize(name);
    out += "# TYPE " + metric + " gauge\n";
    out += metric + " " + std::to_string(g.value) + "\n";
    const struct {
      const char* suffix;
      double value;
    } kCompanions[] = {
        {"_min", g.min}, {"_max", g.max}, {"_avg", g.mean}};
    for (const auto& c : kCompanions) {
      out += "# TYPE " + metric + c.suffix + " gauge\n";
      out += metric + c.suffix + " " + std::to_string(c.value) + "\n";
    }
  }
  for (const auto& [name, h] : histograms) {
    const std::string metric = sanitize(name);
    out += "# TYPE " + metric + " summary\n";
    const struct {
      const char* quantile;
      double value;
    } kQuantiles[] = {{"0.5", h.p50}, {"0.9", h.p90}, {"0.99", h.p99}};
    for (const auto& q : kQuantiles) {
      out += metric + "{quantile=\"" + q.quantile + "\"} " +
             std::to_string(q.value) + "\n";
    }
    out += metric + "_sum " + std::to_string(h.sum) + "\n";
    out += metric + "_count " + std::to_string(h.count) + "\n";
    // Native histogram exposition of the same instrument under a
    // distinct metric name (one name cannot be both summary and
    // histogram): cumulative power-of-two buckets let a scraper compute
    // any quantile, not just the three baked above.
    const std::string hist_metric = metric + "_hist";
    out += "# TYPE " + hist_metric + " histogram\n";
    for (const auto& [le, cumulative] : h.buckets) {
      out += hist_metric + "_bucket{le=\"" + std::to_string(le) + "\"} " +
             std::to_string(cumulative) + "\n";
    }
    out += hist_metric + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) +
           "\n";
    out += hist_metric + "_sum " + std::to_string(h.sum) + "\n";
    out += hist_metric + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

}  // namespace circus::obs
