#include "src/obs/util.h"

#include <cmath>
#include <cstdio>
#include <utility>

#include "src/obs/event.h"

namespace circus::obs {

namespace {

SaturationLevel Grade(const ResourceSample& sample,
                      const ResourceGrading& grading) {
  SaturationLevel level = SaturationLevel::kOk;
  if (sample.utilization >= 0) {
    if (sample.utilization >= grading.saturated_utilization) {
      level = SaturationLevel::kSaturated;
    } else if (sample.utilization >= grading.high_utilization) {
      level = SaturationLevel::kHigh;
    }
  }
  if (grading.saturated_queue >= 0 &&
      sample.queue >= grading.saturated_queue) {
    level = SaturationLevel::kSaturated;
  } else if (grading.high_queue >= 0 && sample.queue >= grading.high_queue &&
             level == SaturationLevel::kOk) {
    level = SaturationLevel::kHigh;
  }
  return level;
}

// Prometheus doubles via %g would drop trailing zeros run-to-run
// identically, but std::to_string's fixed six decimals match the rest
// of the obs expositions; keep the house style.
std::string Num(double v) { return std::to_string(v); }

}  // namespace

const char* SaturationLevelName(SaturationLevel level) {
  switch (level) {
    case SaturationLevel::kOk:
      return "ok";
    case SaturationLevel::kHigh:
      return "high";
    case SaturationLevel::kSaturated:
      return "saturated";
  }
  return "unknown";
}

void UtilizationMonitor::AddResource(std::string name, ResourceProbe probe,
                                     ResourceGrading grading) {
  ResourceStats stats;
  stats.name = std::move(name);
  stats.grading = grading;
  resources_.push_back(std::move(stats));
  probes_.push_back(std::move(probe));
}

void UtilizationMonitor::PublishTransition(const ResourceStats& stats,
                                           int64_t now_ns) {
  if (bus_ == nullptr || !bus_->active()) {
    return;
  }
  Event e;
  e.kind = EventKind::kSaturation;
  e.time_ns = now_ns;
  e.detail = stats.name;
  const double util = stats.last.utilization;
  e.a = util > 0 ? static_cast<uint64_t>(std::lround(util * 10000.0)) : 0;
  e.b = static_cast<uint64_t>(stats.level);
  e.c = stats.last.queue > 0
            ? static_cast<uint64_t>(std::lround(stats.last.queue))
            : 0;
  bus_->Publish(std::move(e));
}

void UtilizationMonitor::MirrorToMetrics(const ResourceStats& stats,
                                         const ResourceSample& delta) {
  if (metrics_ == nullptr) {
    return;
  }
  const std::string prefix = "util." + stats.name;
  metrics_->GetGauge(prefix + ".busy_pct")
      ->Set(stats.last.utilization >= 0 ? stats.last.utilization * 100.0
                                        : -1.0);
  metrics_->GetGauge(prefix + ".queue")->Set(stats.last.queue);
  metrics_->GetGauge(prefix + ".level")
      ->Set(static_cast<double>(stats.level));
  metrics_->GetCounter(prefix + ".ops")->Add(delta.ops);
  metrics_->GetCounter(prefix + ".bytes")->Add(delta.bytes);
  metrics_->GetCounter(prefix + ".errors")->Add(delta.errors);
}

void UtilizationMonitor::Sample(int64_t now_ns) {
  const int64_t window_ns = started_ ? now_ns - last_sample_ns_ : 0;
  started_ = true;
  last_sample_ns_ = now_ns;
  last_window_ns_ = window_ns;
  ++samples_;
  for (size_t i = 0; i < probes_.size(); ++i) {
    ResourceStats& stats = resources_[i];
    const ResourceSample sample = probes_[i](window_ns);
    stats.last = sample;
    if (sample.utilization >= 0 && window_ns > 0) {
      if (sample.utilization > stats.utilization_peak) {
        stats.utilization_peak = sample.utilization;
      }
      stats.util_weighted_sum +=
          sample.utilization * static_cast<double>(window_ns);
      stats.util_weight_ns += static_cast<double>(window_ns);
    }
    if (sample.queue > stats.queue_peak) {
      stats.queue_peak = sample.queue;
    }
    stats.ops_total += sample.ops;
    stats.bytes_total += sample.bytes;
    stats.errors_total += sample.errors;
    const double window_s = static_cast<double>(window_ns) / 1e9;
    stats.ops_per_sec =
        window_s > 0 ? static_cast<double>(sample.ops) / window_s : 0;
    stats.bytes_per_sec =
        window_s > 0 ? static_cast<double>(sample.bytes) / window_s : 0;
    const SaturationLevel level = Grade(sample, stats.grading);
    const bool transitioned = level != stats.level;
    stats.level = level;
    if (transitioned) {
      PublishTransition(stats, now_ns);
    }
    MirrorToMetrics(stats, sample);
  }
}

const ResourceStats* UtilizationMonitor::Find(std::string_view name) const {
  for (const ResourceStats& stats : resources_) {
    if (stats.name == name) {
      return &stats;
    }
  }
  return nullptr;
}

SaturationLevel UtilizationMonitor::WorstLevel() const {
  SaturationLevel worst = SaturationLevel::kOk;
  for (const ResourceStats& stats : resources_) {
    if (static_cast<uint8_t>(stats.level) > static_cast<uint8_t>(worst)) {
      worst = stats.level;
    }
  }
  return worst;
}

std::string UtilizationMonitor::ToString() const {
  std::string out;
  char line[192];
  std::snprintf(line, sizeof(line),
                "util @ %.3fs, %llu sample(s), worst %s\n",
                static_cast<double>(last_sample_ns_) / 1e9,
                static_cast<unsigned long long>(samples_),
                SaturationLevelName(WorstLevel()));
  out += line;
  std::snprintf(line, sizeof(line),
                "  %-18s %6s %6s %6s %8s %8s %10s %12s %6s %s\n",
                "resource", "busy%", "mean%", "peak%", "queue", "q.peak",
                "ops/s", "bytes/s", "errs", "level");
  out += line;
  for (const ResourceStats& s : resources_) {
    char busy[16];
    if (s.last.utilization >= 0) {
      std::snprintf(busy, sizeof(busy), "%6.1f", s.last.utilization * 100);
    } else {
      std::snprintf(busy, sizeof(busy), "%6s", "-");
    }
    std::snprintf(line, sizeof(line),
                  "  %-18s %6s %6.1f %6.1f %8.1f %8.1f %10.1f %12.1f %6llu"
                  " %s\n",
                  s.name.c_str(), busy, s.utilization_mean() * 100,
                  s.utilization_peak * 100, s.last.queue, s.queue_peak,
                  s.ops_per_sec, s.bytes_per_sec,
                  static_cast<unsigned long long>(s.errors_total),
                  SaturationLevelName(s.level));
    out += line;
  }
  return out;
}

std::string UtilizationMonitor::ToPrometheus() const {
  auto label = [](const std::string& name) {
    return "{resource=\"" + name + "\"} ";
  };
  std::string out;
  struct GaugeFamily {
    const char* metric;
    std::function<double(const ResourceStats&)> value;
  };
  const GaugeFamily kGauges[] = {
      {"circus_util_busy_pct",
       [](const ResourceStats& s) {
         return s.last.utilization >= 0 ? s.last.utilization * 100 : -1.0;
       }},
      {"circus_util_busy_mean_pct",
       [](const ResourceStats& s) { return s.utilization_mean() * 100; }},
      {"circus_util_busy_peak_pct",
       [](const ResourceStats& s) { return s.utilization_peak * 100; }},
      {"circus_util_queue",
       [](const ResourceStats& s) { return s.last.queue; }},
      {"circus_util_queue_peak",
       [](const ResourceStats& s) { return s.queue_peak; }},
      {"circus_util_ops_per_sec",
       [](const ResourceStats& s) { return s.ops_per_sec; }},
      {"circus_util_bytes_per_sec",
       [](const ResourceStats& s) { return s.bytes_per_sec; }},
      {"circus_util_level",
       [](const ResourceStats& s) {
         return static_cast<double>(s.level);
       }},
  };
  for (const GaugeFamily& family : kGauges) {
    out += std::string("# TYPE ") + family.metric + " gauge\n";
    for (const ResourceStats& s : resources_) {
      out += family.metric + label(s.name) + Num(family.value(s)) + "\n";
    }
  }
  struct CounterFamily {
    const char* metric;
    std::function<uint64_t(const ResourceStats&)> value;
  };
  const CounterFamily kCounters[] = {
      {"circus_util_ops_total",
       [](const ResourceStats& s) { return s.ops_total; }},
      {"circus_util_bytes_total",
       [](const ResourceStats& s) { return s.bytes_total; }},
      {"circus_util_errors_total",
       [](const ResourceStats& s) { return s.errors_total; }},
  };
  for (const CounterFamily& family : kCounters) {
    out += std::string("# TYPE ") + family.metric + " counter\n";
    for (const ResourceStats& s : resources_) {
      out += family.metric + label(s.name) +
             std::to_string(family.value(s)) + "\n";
    }
  }
  out += "# TYPE circus_util_samples_total counter\n";
  out += "circus_util_samples_total " + std::to_string(samples_) + "\n";
  out += "# TYPE circus_util_window_ns gauge\n";
  out += "circus_util_window_ns " + std::to_string(last_window_ns_) + "\n";
  out += "# TYPE circus_util_worst_level gauge\n";
  out += "circus_util_worst_level " +
         std::to_string(static_cast<int>(WorstLevel())) + "\n";
  return out;
}

}  // namespace circus::obs
