// USE-method utilization telemetry (utilization / saturation / errors,
// per resource). A UtilizationMonitor owns a set of named resources,
// each backed by a pull probe; Sample(now) reads every probe over the
// window since the previous sample, mirrors the readings into Gauges on
// the runtime's MetricsRegistry, grades each resource ok / high /
// saturated, and publishes a kSaturation event on every level
// transition (so saturation episodes land in trace shards next to the
// protocol events they explain).
//
// Sampling is driven externally — the bench loop between sim RunFor
// steps, the node's periodic flush task in rt — so in a World the whole
// pipeline runs on virtual time and ToPrometheus() is byte-stable per
// seed. Probes own their window bookkeeping: each call reports activity
// since the previous call (the first call, window 0, is the baseline).
#ifndef SRC_OBS_UTIL_H_
#define SRC_OBS_UTIL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/bus.h"
#include "src/obs/metrics.h"

namespace circus::obs {

enum class SaturationLevel : uint8_t { kOk = 0, kHigh = 1, kSaturated = 2 };
const char* SaturationLevelName(SaturationLevel level);

// One window's reading for a resource, as returned by its probe.
struct ResourceSample {
  double utilization = -1;  // busy share in [0, 1]; negative = n/a
  double queue = 0;         // instantaneous backlog (events, lines, ...)
  uint64_t ops = 0;         // operations completed this window
  uint64_t bytes = 0;       // bytes moved/allocated this window
  uint64_t errors = 0;      // errors this window (drops, EAGAIN, ...)
};
using ResourceProbe = std::function<ResourceSample(int64_t window_ns)>;

// Per-resource grading thresholds. Utilization-graded by default; queue
// thresholds grade backlog-type resources that have no natural busy
// share (negative disables queue grading).
struct ResourceGrading {
  double high_utilization = 0.70;
  double saturated_utilization = 0.90;
  double high_queue = -1;
  double saturated_queue = -1;
};

struct ResourceStats {
  std::string name;
  ResourceGrading grading;
  ResourceSample last;
  SaturationLevel level = SaturationLevel::kOk;
  double utilization_peak = 0;
  double queue_peak = 0;
  uint64_t ops_total = 0;
  uint64_t bytes_total = 0;
  uint64_t errors_total = 0;
  double ops_per_sec = 0;  // over the last window
  double bytes_per_sec = 0;
  // Time-weighted mean utilization across every sampled window.
  double util_weighted_sum = 0;  // sum of utilization * window_ns
  double util_weight_ns = 0;     // total window_ns with a busy share
  double utilization_mean() const {
    return util_weight_ns > 0 ? util_weighted_sum / util_weight_ns : 0;
  }
};

class UtilizationMonitor {
 public:
  UtilizationMonitor() = default;
  UtilizationMonitor(const UtilizationMonitor&) = delete;
  UtilizationMonitor& operator=(const UtilizationMonitor&) = delete;

  // Publishes kSaturation events on level transitions (optional).
  void SetBus(EventBus* bus) { bus_ = bus; }
  // Mirrors readings into `util.<resource>.*` gauges and counters so
  // the plain `metrics` surface sees them too (optional).
  void SetMetrics(MetricsRegistry* metrics) { metrics_ = metrics; }

  // Registers a resource. The probe is called once per Sample with the
  // elapsed window; it must report the activity since its previous call
  // (capture and subtract its own baselines).
  void AddResource(std::string name, ResourceProbe probe,
                   ResourceGrading grading = ResourceGrading{});

  // Samples every probe. `now_ns` must not go backwards; the first call
  // baselines the probes over a zero-length window.
  void Sample(int64_t now_ns);

  const std::vector<ResourceStats>& resources() const {
    return resources_;
  }
  const ResourceStats* Find(std::string_view name) const;
  SaturationLevel WorstLevel() const;
  uint64_t samples() const { return samples_; }
  int64_t last_sample_ns() const { return last_sample_ns_; }

  // Aligned human-readable table (circus_top renders its own from the
  // Prometheus form; this one serves logs, benches, and tests).
  std::string ToString() const;
  // `circus_util_*` exposition with one `resource="..."` label per
  // series — the body of the `util` introspection query.
  std::string ToPrometheus() const;

 private:
  void PublishTransition(const ResourceStats& stats, int64_t now_ns);
  void MirrorToMetrics(const ResourceStats& stats,
                       const ResourceSample& delta);

  EventBus* bus_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  std::vector<ResourceProbe> probes_;     // parallel to resources_
  std::vector<ResourceStats> resources_;
  uint64_t samples_ = 0;
  int64_t last_sample_ns_ = 0;
  int64_t last_window_ns_ = 0;
  bool started_ = false;
};

}  // namespace circus::obs

#endif  // SRC_OBS_UTIL_H_
