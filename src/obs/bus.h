// The per-World event bus. Protocol layers publish typed obs::Events;
// subscribers (trace collectors, invariant monitors, recorder taps)
// receive them synchronously, in publish order — which, inside the
// deterministic simulation, is itself deterministic per seed.
//
// Publishing is designed to be near-free when nobody is listening:
// publishers check `active()` before even constructing an Event, so an
// un-observed run pays one branch per would-be event.
#ifndef SRC_OBS_BUS_H_
#define SRC_OBS_BUS_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "src/obs/event.h"

namespace circus::obs {

class EventBus {
 public:
  using Subscriber = std::function<void(const Event&)>;
  using SubscriberId = uint64_t;

  EventBus() = default;
  EventBus(const EventBus&) = delete;
  EventBus& operator=(const EventBus&) = delete;

  // True when at least one subscriber is attached. Publishers gate event
  // construction on this so tracing costs nothing when disabled.
  bool active() const { return !subscribers_.empty(); }

  // The clock used to stamp events whose time_ns is unset — the seam
  // that makes the bus runtime-agnostic. The World installs its
  // executor's simulated clock here; rt::Runtime installs its
  // CLOCK_REALTIME-seeded wall clock. Without one, events keep whatever
  // timestamp the publisher set.
  void SetClock(std::function<int64_t()> now_ns) {
    clock_ = std::move(now_ns);
  }

  // Stamps every published event with this process incarnation (0, the
  // default, leaves events unstamped — the simulated World's mode).
  void SetIncarnation(uint64_t incarnation) { incarnation_ = incarnation; }
  uint64_t incarnation() const { return incarnation_; }

  SubscriberId Subscribe(Subscriber fn);
  void Unsubscribe(SubscriberId id);

  // Fans `event` out to every subscriber, stamping the simulated time
  // first if the publisher left it unset. Synchronous: subscribers run
  // inside the publisher's call, so they must not re-enter the protocol.
  void Publish(Event event);

  uint64_t published() const { return published_; }

 private:
  std::vector<std::pair<SubscriberId, Subscriber>> subscribers_;
  std::function<int64_t()> clock_;
  uint64_t incarnation_ = 0;
  SubscriberId next_id_ = 1;
  uint64_t published_ = 0;
};

// RAII subscriber that buffers every event it sees, in publish order.
// The standard way for tests, benches, and exporter pipelines to collect
// a run's event stream.
class EventLog {
 public:
  explicit EventLog(EventBus* bus);
  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;
  ~EventLog();

  const std::vector<Event>& events() const { return events_; }
  std::vector<Event> Take() { return std::exchange(events_, {}); }
  void Clear() { events_.clear(); }

 private:
  EventBus* bus_;
  EventBus::SubscriberId id_ = 0;
  std::vector<Event> events_;
};

}  // namespace circus::obs

#endif  // SRC_OBS_BUS_H_
