#include "src/obs/latency.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "src/obs/trace.h"

namespace circus::obs {

namespace {
constexpr double kNsPerUs = 1000.0;

// Bound on the auxiliary txn/broadcast wait maps: entries whose closing
// event never arrives (aborted coordinator, crashed member) must not
// accumulate forever.
constexpr size_t kMaxAuxPending = 1024;

double ToUs(int64_t ns) { return static_cast<double>(ns) / kNsPerUs; }
}  // namespace

const char* StageName(Stage stage) {
  switch (stage) {
    case Stage::kClientMarshal:
      return "client_marshal";
    case Stage::kRequestFlight:
      return "request_flight";
    case Stage::kServerQueue:
      return "server_queue";
    case Stage::kServerExecute:
      return "server_execute";
    case Stage::kReplyCollate:
      return "reply_collate";
    case Stage::kServerRoundtrip:
      return "server_roundtrip";
  }
  return "unknown";
}

int64_t CallTimeline::StageNs(Stage stage) const {
  switch (stage) {
    case Stage::kClientMarshal:
      return fanout_ns - issue_ns;
    case Stage::kRequestFlight:
      return has_server_leg() ? admit_ns - fanout_ns : -1;
    case Stage::kServerQueue:
      return has_server_leg() ? begin_ns - admit_ns : -1;
    case Stage::kServerExecute:
      return has_server_leg() ? end_ns - begin_ns : -1;
    case Stage::kReplyCollate:
      return has_server_leg() ? collate_ns - end_ns : -1;
    case Stage::kServerRoundtrip:
      return has_server_leg() ? -1 : collate_ns - fanout_ns;
  }
  return -1;
}

std::string CallTimeline::ToString() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "call m%llu:p%llu %s#%u e2e=%.1fus",
                static_cast<unsigned long long>(module),
                static_cast<unsigned long long>(procedure),
                thread.ToString().c_str(), seq, ToUs(end_to_end_ns()));
  out += buf;
  const Stage kStages[] = {Stage::kClientMarshal, Stage::kRequestFlight,
                           Stage::kServerQueue, Stage::kServerExecute,
                           Stage::kReplyCollate, Stage::kServerRoundtrip};
  const char* kShort[] = {"marshal", "flight", "queue",
                          "execute", "collate", "roundtrip"};
  for (int i = 0; i < kStageCount; ++i) {
    const int64_t ns = StageNs(kStages[i]);
    if (ns < 0) {
      continue;
    }
    std::snprintf(buf, sizeof(buf), " %s=%.1f", kShort[i], ToUs(ns));
    out += buf;
  }
  std::snprintf(buf, sizeof(buf), " retx=%u %s", retransmits,
                ok ? "ok" : "fail");
  out += buf;
  return out;
}

LatencyAttributor::LatencyAttributor(Options options) : options_(options) {}

LatencyAttributor::~LatencyAttributor() { Detach(); }

void LatencyAttributor::Attach(EventBus* bus) {
  bus_ = bus;
  subscriber_id_ =
      bus_->Subscribe([this](const Event& event) { Observe(event); });
}

void LatencyAttributor::Detach() {
  if (bus_ != nullptr) {
    bus_->Unsubscribe(subscriber_id_);
    bus_ = nullptr;
  }
}

void LatencyAttributor::Buffer(Pending* pending, const Event& event) {
  if (pending->events.size() >= options_.max_events_per_call) {
    pending->events_truncated = true;
    return;
  }
  pending->events.push_back(event);
}

void LatencyAttributor::ErasePending(const Key& key, Pending* pending) {
  for (const auto& mk : pending->msg_keys) {
    msg_index_.erase(mk);
  }
  pending_order_.erase(pending->order);
  pending_.erase(key);
}

void LatencyAttributor::EvictOldestPending() {
  if (pending_order_.empty()) {
    return;
  }
  const Key key = pending_order_.begin()->second;
  auto it = pending_.find(key);
  if (it != pending_.end()) {
    ++dropped_pending_;
    Pending doomed = std::move(it->second);
    ErasePending(key, &doomed);
  }
}

void LatencyAttributor::Observe(const Event& event) {
  switch (event.kind) {
    case EventKind::kCallIssue: {
      const Key key{event.thread, event.thread_seq};
      auto it = pending_.find(key);
      if (it != pending_.end()) {
        // A replicated client's sibling member issuing the same logical
        // call: count it, attribute only the first issuer's timeline.
        if (it->second.client_origin != event.origin) {
          ++sibling_calls_;
        }
        return;
      }
      if (pending_.size() >= options_.max_pending) {
        EvictOldestPending();
      }
      Pending pending;
      pending.client_origin = event.origin;
      pending.module = event.a;
      pending.procedure = event.b;
      pending.issue_ns = event.time_ns;
      pending.order = next_order_++;
      Buffer(&pending, event);
      pending_order_[pending.order] = key;
      pending_.emplace(key, std::move(pending));
      return;
    }
    case EventKind::kCallFanout: {
      const Key key{event.thread, event.thread_seq};
      auto it = pending_.find(key);
      if (it == pending_.end()) {
        return;
      }
      Pending& pending = it->second;
      // Index every leg's paired-message call number (siblings too) so
      // any leg's retransmits charge to this logical call.
      const auto mk = std::make_pair(event.origin, event.c);
      msg_index_[mk] = key;
      pending.msg_keys.push_back(mk);
      if (event.origin == pending.client_origin && pending.fanout_ns < 0) {
        pending.fanout_ns = event.time_ns;
      }
      Buffer(&pending, event);
      return;
    }
    case EventKind::kCallAdmit: {
      const Key key{event.thread, event.thread_seq};
      auto it = pending_.find(key);
      if (it == pending_.end()) {
        return;
      }
      ServerLeg& leg = it->second.legs[event.origin];
      if (leg.admit_ns < 0) {
        leg.admit_ns = event.time_ns;
      }
      Buffer(&it->second, event);
      return;
    }
    case EventKind::kExecuteBegin: {
      const Key key{event.thread, event.thread_seq};
      auto it = pending_.find(key);
      if (it == pending_.end()) {
        return;
      }
      ServerLeg& leg = it->second.legs[event.origin];
      if (leg.begin_ns < 0) {
        leg.begin_ns = event.time_ns;
      }
      Buffer(&it->second, event);
      return;
    }
    case EventKind::kExecuteEnd: {
      const Key key{event.thread, event.thread_seq};
      auto it = pending_.find(key);
      if (it == pending_.end()) {
        return;
      }
      ServerLeg& leg = it->second.legs[event.origin];
      if (leg.end_ns < 0) {
        leg.end_ns = event.time_ns;
      }
      Buffer(&it->second, event);
      return;
    }
    case EventKind::kCallCollate: {
      const Key key{event.thread, event.thread_seq};
      auto it = pending_.find(key);
      if (it == pending_.end()) {
        return;
      }
      if (event.origin != it->second.client_origin) {
        // A sibling client member's collator finished first; the
        // timeline belongs to the first issuer.
        return;
      }
      Pending pending = std::move(it->second);
      Buffer(&pending, event);
      ErasePending(key, &pending);
      Finalize(key, std::move(pending), event);
      return;
    }
    case EventKind::kSegmentRetransmit: {
      // origin = retransmitting endpoint, b = paired-message call number.
      auto it = msg_index_.find(std::make_pair(event.origin, event.b));
      if (it == msg_index_.end()) {
        return;
      }
      auto pit = pending_.find(it->second);
      if (pit == pending_.end()) {
        return;
      }
      ++pit->second.retransmits;
      ++retransmits_;
      Buffer(&pit->second, event);
      return;
    }
    case EventKind::kTxnVote: {
      if (txn_first_vote_ns_.size() >= kMaxAuxPending) {
        txn_first_vote_ns_.erase(txn_first_vote_ns_.begin());
      }
      txn_first_vote_ns_.emplace(event.c, event.time_ns);
      return;
    }
    case EventKind::kTxnDecision: {
      auto it = txn_first_vote_ns_.find(event.c);
      if (it == txn_first_vote_ns_.end()) {
        return;
      }
      commit_wait_us_.Observe(ToUs(event.time_ns - it->second));
      txn_first_vote_ns_.erase(it);
      return;
    }
    case EventKind::kBroadcastPropose: {
      if (broadcast_propose_ns_.size() >= kMaxAuxPending) {
        broadcast_propose_ns_.erase(broadcast_propose_ns_.begin());
      }
      broadcast_propose_ns_.emplace(event.a, event.time_ns);
      return;
    }
    case EventKind::kBroadcastDeliver: {
      auto it = broadcast_propose_ns_.find(event.a);
      if (it == broadcast_propose_ns_.end()) {
        return;
      }
      broadcast_wait_us_.Observe(ToUs(event.time_ns - it->second));
      broadcast_propose_ns_.erase(it);
      return;
    }
    default:
      return;
  }
}

void LatencyAttributor::Finalize(const Key& key, Pending pending,
                                 const Event& collate) {
  CallTimeline t;
  t.thread = key.thread;
  t.seq = key.seq;
  t.module = pending.module;
  t.procedure = pending.procedure;
  t.client_origin = pending.client_origin;
  t.issue_ns = pending.issue_ns;
  // A call with no fanout event (foreign shard missing it) degrades to a
  // zero-length marshal stage so the telescoping sum stays intact.
  t.fanout_ns = pending.fanout_ns >= 0 ? pending.fanout_ns : pending.issue_ns;
  t.collate_ns = collate.time_ns;
  t.retransmits = pending.retransmits;
  t.ok = collate.c == 1;

  // The server leg the collator waited for: among complete, monotone
  // legs finishing no later than the collate (first-come collation can
  // return before slow members finish), the one finishing last. Map
  // order makes ties deterministic.
  for (const auto& [origin, leg] : pending.legs) {
    const bool complete = leg.admit_ns >= 0 && leg.begin_ns >= 0 &&
                          leg.end_ns >= 0;
    const bool monotone = complete && leg.admit_ns >= t.fanout_ns &&
                          leg.begin_ns >= leg.admit_ns &&
                          leg.end_ns >= leg.begin_ns &&
                          leg.end_ns <= t.collate_ns;
    if (monotone && leg.end_ns > t.end_ns) {
      t.admit_ns = leg.admit_ns;
      t.begin_ns = leg.begin_ns;
      t.end_ns = leg.end_ns;
    }
  }

  ++calls_;
  end_to_end_us_.Observe(ToUs(t.end_to_end_ns()));
  for (int i = 0; i < kStageCount; ++i) {
    const int64_t ns = t.StageNs(static_cast<Stage>(i));
    if (ns >= 0) {
      stage_us_[i].Observe(ToUs(ns));
    }
  }

  CallExemplar exemplar;
  exemplar.timeline = t;
  exemplar.events = std::move(pending.events);

  if (options_.slow_call_threshold_ns > 0 &&
      t.end_to_end_ns() >= options_.slow_call_threshold_ns &&
      slow_queue_.size() < options_.max_slow_queue) {
    slow_queue_.push_back(exemplar);
  }

  // Keep the K slowest, slowest first; ties keep the earlier call first.
  auto pos = slowest_.begin();
  while (pos != slowest_.end() &&
         pos->timeline.end_to_end_ns() >= t.end_to_end_ns()) {
    ++pos;
  }
  if (pos != slowest_.end() || slowest_.size() < options_.max_exemplars) {
    slowest_.insert(pos, std::move(exemplar));
    if (slowest_.size() > options_.max_exemplars) {
      slowest_.pop_back();
    }
  }
}

const Histogram& LatencyAttributor::StageHistogramUs(Stage stage) const {
  return stage_us_[static_cast<int>(stage)];
}

std::vector<CallExemplar> LatencyAttributor::TakeSlowCalls() {
  return std::exchange(slow_queue_, {});
}

std::string LatencyAttributor::ToString() const {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf),
                "latency attribution: %llu calls, %llu siblings, "
                "%llu retransmits, %llu dropped\n",
                static_cast<unsigned long long>(calls_),
                static_cast<unsigned long long>(sibling_calls_),
                static_cast<unsigned long long>(retransmits_),
                static_cast<unsigned long long>(dropped_pending_));
  out += buf;
  std::snprintf(buf, sizeof(buf), "  %-18s %8s %10s %10s %10s %10s %7s\n",
                "stage", "count", "p50_us", "p90_us", "p99_us", "max_us",
                "share");
  out += buf;
  const double e2e_sum = end_to_end_us_.sum();
  auto row = [&](const char* name, const Histogram& h, bool share) {
    const double pct =
        share && e2e_sum > 0 ? 100.0 * h.sum() / e2e_sum : 0.0;
    char pbuf[16] = "-";
    if (share && e2e_sum > 0) {
      std::snprintf(pbuf, sizeof(pbuf), "%.1f%%", pct);
    }
    std::snprintf(buf, sizeof(buf),
                  "  %-18s %8llu %10.1f %10.1f %10.1f %10.1f %7s\n", name,
                  static_cast<unsigned long long>(h.count()),
                  h.Percentile(0.50), h.Percentile(0.90),
                  h.Percentile(0.99), h.max(), pbuf);
    out += buf;
  };
  for (int i = 0; i < kStageCount; ++i) {
    row(StageName(static_cast<Stage>(i)), stage_us_[i], true);
  }
  row("end_to_end", end_to_end_us_, false);
  row("commit_wait", commit_wait_us_, false);
  row("broadcast_wait", broadcast_wait_us_, false);
  return out;
}

std::string LatencyAttributor::ToPrometheus() const {
  auto summary = [](std::string* out, const std::string& metric,
                    const std::string& labels, const Histogram& h) {
    const struct {
      const char* quantile;
      double value;
    } kQuantiles[] = {{"0.5", h.Percentile(0.50)},
                      {"0.9", h.Percentile(0.90)},
                      {"0.99", h.Percentile(0.99)}};
    for (const auto& q : kQuantiles) {
      *out += metric + "{" + labels + (labels.empty() ? "" : ",") +
              "quantile=\"" + q.quantile + "\"} " +
              std::to_string(q.value) + "\n";
    }
    *out += metric + "_sum" + (labels.empty() ? "" : "{" + labels + "}") +
            " " + std::to_string(h.sum()) + "\n";
    *out += metric + "_count" + (labels.empty() ? "" : "{" + labels + "}") +
            " " + std::to_string(h.count()) + "\n";
  };
  std::string out;
  out += "# TYPE circus_latency_stage_us summary\n";
  for (int i = 0; i < kStageCount; ++i) {
    summary(&out, "circus_latency_stage_us",
            std::string("stage=\"") + StageName(static_cast<Stage>(i)) +
                "\"",
            stage_us_[i]);
  }
  out += "# TYPE circus_latency_end_to_end_us summary\n";
  summary(&out, "circus_latency_end_to_end_us", "", end_to_end_us_);
  out += "# TYPE circus_latency_commit_wait_us summary\n";
  summary(&out, "circus_latency_commit_wait_us", "", commit_wait_us_);
  out += "# TYPE circus_latency_broadcast_wait_us summary\n";
  summary(&out, "circus_latency_broadcast_wait_us", "", broadcast_wait_us_);
  out += "# TYPE circus_latency_calls_total counter\n";
  out += "circus_latency_calls_total " + std::to_string(calls_) + "\n";
  out += "# TYPE circus_latency_retransmits_total counter\n";
  out += "circus_latency_retransmits_total " + std::to_string(retransmits_) +
         "\n";
  out += "# TYPE circus_latency_sibling_calls_total counter\n";
  out += "circus_latency_sibling_calls_total " +
         std::to_string(sibling_calls_) + "\n";
  return out;
}

std::string LatencyAttributor::SlowCallReport() const {
  std::string out = "slowest " + std::to_string(slowest_.size()) +
                    " calls (of " + std::to_string(calls_) + "):\n";
  for (const CallExemplar& exemplar : slowest_) {
    out += "  " + exemplar.timeline.ToString() + "\n";
    const std::vector<Span> roots = AssembleSpans(exemplar.events);
    std::string rendered = Render(roots);
    // Indent the span tree under its timeline line.
    size_t start = 0;
    while (start < rendered.size()) {
      size_t end = rendered.find('\n', start);
      if (end == std::string::npos) {
        end = rendered.size();
      }
      out += "    " + rendered.substr(start, end - start) + "\n";
      start = end + 1;
    }
  }
  return out;
}

}  // namespace circus::obs
