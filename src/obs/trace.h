// TraceAssembler: turns a run's event stream into per-call span trees.
//
// The correlation key is the Section 3.4.1 logical thread: a client span
// opens at kCallIssue and closes at kCallCollate; every server member
// that executes the call emits kExecuteBegin/kExecuteEnd with the same
// (thread, thread_seq), and those execute spans become children of the
// call span — across hosts. Nested calls a handler makes parent to the
// enclosing execute span on the same (host, thread). The result: one
// connected tree per root thread, no matter how many troupe members the
// call fanned out across.
//
// Replicated *clients* issue the same (thread, thread_seq) from several
// hosts; the server's single execution then attaches to the
// earliest-issued member call still open (deterministic), and the
// sibling members' call spans stay leaves. Spans whose end event never
// arrived (crashed host, abandoned call) keep end_ns = -1.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/obs/event.h"

namespace circus::obs {

struct Span {
  enum class Kind : uint8_t {
    kCall,     // client side: issue -> collate
    kExecute,  // server member: execute begin -> end
  };

  Kind kind = Kind::kCall;
  ThreadRef thread;
  uint32_t seq = 0;
  uint32_t host = 0;
  uint64_t module = 0;
  uint64_t procedure = 0;
  int64_t begin_ns = -1;
  int64_t end_ns = -1;
  bool ok = true;
  std::vector<Span> children;

  // Structural rendering: kind, procedure, outcome, children — no
  // hosts, threads, or times. Equal across replicas of one call and
  // across seeds of one workload (thread ids are clock-seeded and so
  // differ per seed; structure does not).
  std::string Structure() const;
  // Full rendering including host, thread, and timestamps: equal only
  // for byte-identical runs (same seed, same workload).
  std::string ToString() const;

  size_t TotalSpans() const;
};

// Assembles the span forest from `events` (must be in publish order, as
// an EventLog records them). Events of non-span kinds are ignored.
// Roots come out in issue order.
std::vector<Span> AssembleSpans(const std::vector<Event>& events);

// Concatenated Structure()/ToString() of a forest, one root per line.
std::string StructureOf(const std::vector<Span>& roots);
std::string Render(const std::vector<Span>& roots);

}  // namespace circus::obs

#endif  // SRC_OBS_TRACE_H_
