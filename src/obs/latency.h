// Stage-level latency attribution: decomposes every replicated call seen
// on an EventBus into a timeline of named stages and aggregates each
// stage into a power-of-two histogram, so "where does a call spend its
// time" has a measured answer instead of a guess.
//
// The stage boundaries telescope — each stage ends exactly where the
// next begins — so by construction the sum of a call's stage durations
// equals its end-to-end latency (the conservation invariant
// tests/obs_latency_test.cc asserts):
//
//   client_marshal   kCallIssue   -> kCallFanout    stub + argument marshal
//   request_flight   kCallFanout  -> kCallAdmit*    network + msg layer
//   server_queue     kCallAdmit*  -> kExecuteBegin* collation wait + sched
//   server_execute   kExecuteBegin* -> kExecuteEnd* handler execution
//   reply_collate    kExecuteEnd* -> kCallCollate   reply flight + collation
//
// where * is the server leg the collator actually waited for: among the
// member executions finishing no later than the collate, the one that
// finished last. When no server-side events are visible (a live rt node
// only sees its own process's bus) the middle three stages lump into
//   server_roundtrip kCallFanout  -> kCallCollate
// and conservation still holds: marshal + roundtrip = end-to-end.
//
// Outside the conservation sum, the attributor also tracks commit vote
// wait (first kTxnVote -> kTxnDecision), ordered-broadcast wait (first
// kBroadcastPropose -> first kBroadcastDeliver), and per-call segment
// retransmit counts (joined to calls through the paired-message call
// number kCallFanout carries).
//
// Exemplars: the K slowest finalized calls are kept with their buffered
// event streams, so a report can show the full cross-member span tree
// (obs::AssembleSpans) of exactly the calls worth staring at. A slow-call
// threshold additionally queues every offending call for the rt runtime
// to drain into its trace shard (TakeSlowCalls).
//
// Everything is single-threaded, deterministic per seed, and usable both
// live (Attach to a bus) and offline (Observe over merged shard events).
#ifndef SRC_OBS_LATENCY_H_
#define SRC_OBS_LATENCY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/bus.h"
#include "src/obs/event.h"
#include "src/obs/metrics.h"

namespace circus::obs {

// Stages of one replicated call. The first five telescope into the
// conservation sum; kServerRoundtrip replaces the middle three when no
// server-side events were visible for the call.
enum class Stage : uint8_t {
  kClientMarshal = 0,
  kRequestFlight,
  kServerQueue,
  kServerExecute,
  kReplyCollate,
  kServerRoundtrip,
};
inline constexpr int kStageCount = 6;

// Stable lower_snake stage name ("client_marshal", ...).
const char* StageName(Stage stage);

// One finalized call's stage boundaries. Times are bus timestamps (ns);
// -1 marks a boundary that was never observed.
struct CallTimeline {
  ThreadRef thread;
  uint32_t seq = 0;
  uint64_t module = 0;
  uint64_t procedure = 0;
  uint64_t client_origin = 0;  // packed address of the issuing process
  int64_t issue_ns = -1;
  int64_t fanout_ns = -1;
  int64_t admit_ns = -1;    // chosen server leg; -1 = no server visible
  int64_t begin_ns = -1;
  int64_t end_ns = -1;
  int64_t collate_ns = -1;
  uint32_t retransmits = 0;
  bool ok = true;

  bool has_server_leg() const { return end_ns >= 0; }
  int64_t end_to_end_ns() const { return collate_ns - issue_ns; }
  // Duration of `stage`, or -1 when the stage does not apply to this
  // call (roundtrip vs. decomposed middle stages are mutually exclusive).
  int64_t StageNs(Stage stage) const;
  // One-line rendering: procedure, end-to-end, every applicable stage.
  std::string ToString() const;
};

// A kept slow/slowest call: its timeline plus the raw events buffered
// while it was pending, ready for AssembleSpans.
struct CallExemplar {
  CallTimeline timeline;
  std::vector<Event> events;
};

class LatencyAttributor {
 public:
  struct Options {
    // How many slowest-call exemplars to keep (by end-to-end latency).
    size_t max_exemplars = 8;
    // Calls at or above this end-to-end latency are queued for
    // TakeSlowCalls(); 0 disables the queue.
    int64_t slow_call_threshold_ns = 0;
    // Bounds on in-flight state: oldest pending calls are evicted (and
    // counted in dropped_pending()) past these.
    size_t max_pending = 4096;
    size_t max_events_per_call = 96;
    size_t max_slow_queue = 64;
  };

  LatencyAttributor() : LatencyAttributor(Options{}) {}
  explicit LatencyAttributor(Options options);
  LatencyAttributor(const LatencyAttributor&) = delete;
  LatencyAttributor& operator=(const LatencyAttributor&) = delete;
  ~LatencyAttributor();

  // Subscribes to `bus` (detached in the destructor). Alternatively feed
  // events directly with Observe — e.g. a merged shard stream.
  void Attach(EventBus* bus);
  // Unsubscribes early; required before the bus is destroyed when the
  // attributor outlives it (e.g. a bench keeping stats past its World).
  void Detach();
  void Observe(const Event& event);

  // Finalized calls (a sibling client member's duplicate issue of the
  // same logical call is counted, not separately attributed).
  uint64_t calls() const { return calls_; }
  uint64_t sibling_calls() const { return sibling_calls_; }
  uint64_t retransmits() const { return retransmits_; }
  uint64_t dropped_pending() const { return dropped_pending_; }

  const Histogram& end_to_end_us() const { return end_to_end_us_; }
  const Histogram& StageHistogramUs(Stage stage) const;
  // Auxiliary waits outside the conservation sum.
  const Histogram& commit_wait_us() const { return commit_wait_us_; }
  const Histogram& broadcast_wait_us() const { return broadcast_wait_us_; }

  // The K slowest finalized calls, slowest first. Deterministic: ties
  // break toward the earlier-issued call.
  const std::vector<CallExemplar>& slowest() const { return slowest_; }

  // Drains calls that crossed the slow-call threshold since the last
  // drain (issue order). Empty when no threshold is set.
  std::vector<CallExemplar> TakeSlowCalls();

  // Per-stage breakdown table plus auxiliary waits — deterministic per
  // seed, byte-stable across same-seed runs.
  std::string ToString() const;
  // Prometheus text exposition: per-stage summaries
  // (circus_latency_stage_us{stage="..."}), end-to-end summary, and
  // counters. Appended to the node `metrics`/`latency` responses.
  std::string ToPrometheus() const;
  // Top-K slow-call report with full span trees (for circus_lat).
  std::string SlowCallReport() const;

 private:
  struct Key {
    ThreadRef thread;
    uint32_t seq = 0;
    auto operator<=>(const Key&) const = default;
  };
  struct ServerLeg {
    int64_t admit_ns = -1;
    int64_t begin_ns = -1;
    int64_t end_ns = -1;
  };
  struct Pending {
    uint64_t client_origin = 0;
    uint64_t module = 0;
    uint64_t procedure = 0;
    int64_t issue_ns = -1;
    int64_t fanout_ns = -1;
    uint32_t retransmits = 0;
    uint64_t order = 0;  // insertion order, for deterministic eviction
    std::map<uint64_t, ServerLeg> legs;           // server origin -> leg
    std::vector<std::pair<uint64_t, uint64_t>> msg_keys;  // for unindexing
    std::vector<Event> events;
    bool events_truncated = false;
  };

  void Buffer(Pending* pending, const Event& event);
  void Finalize(const Key& key, Pending pending, const Event& collate);
  void EvictOldestPending();
  void ErasePending(const Key& key, Pending* pending);

  Options options_;
  EventBus* bus_ = nullptr;
  EventBus::SubscriberId subscriber_id_ = 0;

  std::map<Key, Pending> pending_;
  std::map<uint64_t, Key> pending_order_;  // order -> key
  // (client origin, paired-message call number) -> pending call, the
  // join that charges segment retransmits to calls.
  std::map<std::pair<uint64_t, uint64_t>, Key> msg_index_;
  uint64_t next_order_ = 0;

  uint64_t calls_ = 0;
  uint64_t sibling_calls_ = 0;
  uint64_t retransmits_ = 0;
  uint64_t dropped_pending_ = 0;

  Histogram end_to_end_us_;
  Histogram stage_us_[kStageCount];
  Histogram commit_wait_us_;
  Histogram broadcast_wait_us_;
  std::map<uint64_t, int64_t> txn_first_vote_ns_;        // txn -> time
  std::map<uint64_t, int64_t> broadcast_propose_ns_;     // msg id -> time

  std::vector<CallExemplar> slowest_;
  std::vector<CallExemplar> slow_queue_;
};

}  // namespace circus::obs

#endif  // SRC_OBS_LATENCY_H_
