// Cross-process trace merge: joins N per-node shards (src/obs/shard.h)
// into one event stream on one timeline.
//
// Each rt node stamps events with its own CLOCK_REALTIME, so shards from
// different processes disagree by each host's clock offset. The merge
// estimates pairwise offsets from the paired-message protocol itself:
// for a call n between A and B, the four events
//
//   t1 = A kSegmentSend(peer=B, call=n)       request leaves A
//   t2 = B kMessageDelivered(peer=A, call=n)  request arrives at B
//   t3 = B kSegmentSend(peer=A, call=n)       return leaves B
//   t4 = A kMessageDelivered(peer=B, call=n)  return arrives at A
//
// form an NTP-style exchange: offset(B-A) = ((t2-t1) + (t3-t4)) / 2,
// exact when the two network legs are symmetric. The per-pair estimate
// is the median over all complete exchanges; the residual (max-min
// sample spread) bounds how asymmetric the legs were. Global alignment
// walks the pair graph breadth-first from a reference shard.
//
// Correlation across shards needs no clock at all: it rides the
// propagated Section 3.4.1 thread ID that every event carries.
#ifndef SRC_OBS_MERGE_H_
#define SRC_OBS_MERGE_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/event.h"
#include "src/obs/shard.h"

namespace circus::obs {

// Clock-offset estimate between one pair of shards.
struct PairAlignment {
  size_t shard_a = 0;  // indices into the input shard vector
  size_t shard_b = 0;
  size_t samples = 0;      // complete call/return exchanges found
  int64_t offset_ns = 0;   // median estimate of clock(b) - clock(a)
  int64_t residual_ns = 0; // sample spread (max - min); 0 with <2 samples
};

struct MergeResult {
  // All events from all shards, clock-aligned to the reference shard and
  // stably sorted by time. Each event's `host` is rewritten to its shard
  // index + 1 so ToChromeTrace renders one process lane per node even
  // when the original host ids collide across processes.
  std::vector<Event> events;
  // Shard index + 1 -> "node (addr)" for process_name metadata.
  std::map<uint32_t, std::string> host_names;

  std::vector<PairAlignment> pairs;  // every pair with >= 1 sample
  std::vector<int64_t> shift_ns;     // per-shard correction applied
  std::vector<bool> aligned;         // false: unreachable from reference
  size_t reference = 0;              // shard whose clock won

  // Summed file-level diagnostics from the inputs.
  size_t skipped_lines = 0;
  size_t truncated_tails = 0;
};

// Merges `shards` (as returned by ReadShardFile, order preserved).
// The reference clock is the first shard's. Fails only on an empty
// input; shards with no pairable traffic merge unaligned (flagged).
circus::StatusOr<MergeResult> MergeShards(const std::vector<ShardFile>& shards,
                                          size_t reference = 0);

// Human-readable alignment report: one line per shard (shift, event
// count) and one per pair (samples, offset, residual skew).
std::string MergeReport(const std::vector<ShardFile>& shards,
                        const MergeResult& result);

}  // namespace circus::obs

#endif  // SRC_OBS_MERGE_H_
