#include "src/obs/wire.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <utility>

namespace circus::obs::wire {

namespace {

const char* TypeName(msg::MessageType type) {
  return type == msg::MessageType::kCall ? "call" : "return";
}

const char* PhaseName(Conversation::Phase phase) {
  switch (phase) {
    case Conversation::Phase::kCalling:
      return "calling";
    case Conversation::Phase::kCallDelivered:
      return "call-delivered";
    case Conversation::Phase::kReturning:
      return "returning";
    case Conversation::Phase::kDone:
      return "done";
  }
  return "?";
}

void AdvancePhase(Conversation& conversation, Conversation::Phase to) {
  if (static_cast<int>(to) > static_cast<int>(conversation.phase)) {
    conversation.phase = to;
  }
}

void NoteRemote(Conversation& conversation, const net::NetAddress& remote) {
  auto it = std::lower_bound(conversation.remotes.begin(),
                             conversation.remotes.end(), remote);
  if (it == conversation.remotes.end() || *it != remote) {
    conversation.remotes.insert(it, remote);
  }
}

// The destination component of the sent-message key: one shared key
// for calls (multicast blast + unicast fallback carry the same logical
// message), the real destination for returns (distinct peers' call
// numbers could collide at one callee).
net::NetAddress SentKeyDest(msg::MessageType type,
                            const net::NetAddress& dest) {
  return type == msg::MessageType::kCall ? net::NetAddress{} : dest;
}

}  // namespace

AuditOptions AuditOptionsFor(const msg::EndpointOptions& options) {
  AuditOptions a;
  const double lo = (1.0 - options.timer_jitter) * 0.95;
  a.retransmit_floor_ns = static_cast<int64_t>(
      static_cast<double>(options.retransmit_interval.nanos()) * lo);
  a.probe_floor_ns = static_cast<int64_t>(
      static_cast<double>(options.probe_interval.nanos()) * lo);
  a.max_silent_probes = options.max_silent_probes;
  return a;
}

std::vector<WireSegment> DecodeRecords(
    const std::vector<net::WirePacket>& records, uint64_t* undecodable) {
  std::vector<WireSegment> out;
  out.reserve(records.size());
  for (const net::WirePacket& p : records) {
    std::optional<msg::Segment> seg = msg::Segment::Decode(p.payload);
    if (!seg.has_value()) {
      if (undecodable != nullptr) {
        ++*undecodable;
      }
      continue;
    }
    WireSegment ws;
    ws.packet = p;
    ws.segment = *std::move(seg);
    ws.node = p.send ? p.source : p.destination;
    ws.remote = p.send ? p.destination : p.source;
    out.push_back(std::move(ws));
  }
  return out;
}

WireCost AuditReport::Totals() const {
  WireCost total;
  for (const Conversation& c : conversations) {
    total.packets_sent += c.cost.packets_sent;
    total.packets_received += c.cost.packets_received;
    total.bytes_sent += c.cost.bytes_sent;
    total.bytes_received += c.cost.bytes_received;
    total.data_segments += c.cost.data_segments;
    total.retransmits += c.cost.retransmits;
    total.probes += c.cost.probes;
    total.acks_sent += c.cost.acks_sent;
    total.acks_received += c.cost.acks_received;
    total.implicit_acks += c.cost.implicit_acks;
  }
  return total;
}

size_t AuditReport::CompletedCalls() const {
  size_t n = 0;
  for (const Conversation& c : conversations) {
    if (c.caller && c.phase == Conversation::Phase::kDone) {
      ++n;
    }
  }
  return n;
}

std::string AuditReport::Render(size_t max_violations,
                                bool include_conversations) const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof(line),
                "wire audit: %zu violation(s), %zu call(s) completed, "
                "%" PRIu64 " packets, %" PRIu64 " bytes%s\n",
                violations.size(), CompletedCalls(), packets, bytes,
                complete ? "" : " [capture incomplete]");
  out += line;
  const WireCost t = Totals();
  std::snprintf(line, sizeof(line),
                "totals: data=%" PRIu64 " retx=%" PRIu64 " probes=%" PRIu64
                " acks_tx=%" PRIu64 " acks_rx=%" PRIu64 " implicit=%" PRIu64
                " undecodable=%" PRIu64 " records=%" PRIu64 "\n",
                t.data_segments, t.retransmits, t.probes, t.acks_sent,
                t.acks_received, t.implicit_acks, undecodable, records);
  out += line;
  for (size_t i = 0; i < violations.size() && i < max_violations; ++i) {
    out += "violation: ";
    out += violations[i];
    out += '\n';
  }
  if (violations.size() > max_violations) {
    std::snprintf(line, sizeof(line), "violation: (+%zu more)\n",
                  violations.size() - max_violations);
    out += line;
  }
  if (!include_conversations) {
    return out;
  }
  for (const Conversation& c : conversations) {
    std::snprintf(line, sizeof(line),
                  "%s %s %" PRIu32 " %s peers=%zu tx=%" PRIu64 "pkt/%" PRIu64
                  "B rx=%" PRIu64 "pkt/%" PRIu64 "B data=%" PRIu64
                  " retx=%" PRIu64 " probes=%" PRIu64 " acks_tx=%" PRIu64
                  " acks_rx=%" PRIu64 " implicit=%" PRIu64 "\n",
                  c.node.ToString().c_str(), c.caller ? "call" : "serve",
                  c.call_number, PhaseName(c.phase), c.remotes.size(),
                  c.cost.packets_sent, c.cost.bytes_sent,
                  c.cost.packets_received, c.cost.bytes_received,
                  c.cost.data_segments, c.cost.retransmits, c.cost.probes,
                  c.cost.acks_sent, c.cost.acks_received,
                  c.cost.implicit_acks);
    out += line;
  }
  return out;
}

WireAuditor::WireAuditor(AuditOptions options)
    : options_(std::move(options)) {
  for (const net::NetAddress& m : options_.member_addresses) {
    members_.insert(m);
  }
}

Conversation& WireAuditor::ConversationFor(NodeState& state,
                                           const net::NetAddress& node,
                                           const WireSegment& ws,
                                           bool caller) {
  Conversation& c =
      state.conversations[{ws.segment.call_number, caller}];
  if (c.remotes.empty() && c.call_number == 0 && c.cost.packets_sent == 0 &&
      c.cost.packets_received == 0) {
    c.node = node;
    c.call_number = ws.segment.call_number;
    c.caller = caller;
  }
  NoteRemote(c, ws.remote);
  if (ws.packet.send) {
    ++c.cost.packets_sent;
    c.cost.bytes_sent += ws.packet.payload.size();
  } else {
    ++c.cost.packets_received;
    c.cost.bytes_received += ws.packet.payload.size();
  }
  return c;
}

void WireAuditor::AddViolation(const WireSegment& ws,
                               const std::string& what) {
  char prefix[96];
  std::snprintf(prefix, sizeof(prefix), "%s t=%" PRId64 "ns ",
                ws.node.ToString().c_str(), ws.packet.time_ns);
  report_.violations.push_back(prefix + what);
}

void WireAuditor::ObserveSendRecord(NodeState& state, const WireSegment& ws) {
  const msg::Segment& seg = ws.segment;
  const int64_t t = ws.packet.time_ns;
  char buf[192];

  if (!members_.empty() && members_.count(ws.node) != 0 &&
      members_.count(ws.remote) != 0 &&
      member_pairs_seen_.insert({ws.node, ws.remote}).second) {
    std::snprintf(buf, sizeof(buf), "member-to-member packet to %s",
                  ws.remote.ToString().c_str());
    AddViolation(ws, buf);
  }

  if (seg.ack) {
    // Caller view acks returns; callee view acks calls.
    Conversation& c = ConversationFor(
        state, ws.node, ws, seg.type == msg::MessageType::kReturn);
    ++c.cost.acks_sent;
    const uint8_t k = seg.segment_number;
    if (k > 0 && state.complete) {
      auto it = state.received.find(
          {ws.remote, static_cast<int>(seg.type), seg.call_number});
      const bool have_prefix = [&] {
        if (it == state.received.end()) {
          return false;
        }
        for (uint8_t s = 1; s <= k; ++s) {
          if (it->second.segments.count(s) == 0) {
            return false;
          }
        }
        return true;
      }();
      if (!have_prefix) {
        std::snprintf(buf, sizeof(buf),
                      "ack for unreceived data: acks %u of %s %" PRIu32
                      " from %s (received %zu segment(s))",
                      static_cast<unsigned>(k), TypeName(seg.type),
                      seg.call_number, ws.remote.ToString().c_str(),
                      it == state.received.end() ? size_t{0}
                                                 : it->second.segments.size());
        AddViolation(ws, buf);
      }
    }
    return;
  }

  if (seg.is_probe()) {
    Conversation& c = ConversationFor(state, ws.node, ws, /*caller=*/true);
    ++c.cost.probes;
    ProbeState& probe = state.probes[{ws.remote, seg.call_number}];
    if (probe.last_ns != 0 && options_.probe_floor_ns > 0 &&
        t - probe.last_ns < options_.probe_floor_ns) {
      std::snprintf(buf, sizeof(buf),
                    "probe storm: probe for call %" PRIu32
                    " to %s after %" PRId64 "ns (floor %" PRId64 "ns)",
                    seg.call_number, ws.remote.ToString().c_str(),
                    t - probe.last_ns, options_.probe_floor_ns);
      AddViolation(ws, buf);
    }
    if (state.complete) {
      auto heard = state.last_heard.find(ws.remote);
      const bool heard_since_last_probe =
          heard != state.last_heard.end() &&
          (probe.last_ns == 0 || heard->second > probe.last_ns);
      probe.silent_streak =
          heard_since_last_probe ? 1 : probe.silent_streak + 1;
      // +1 tolerance: the endpoint's "recent activity" window is the
      // probe interval, not exactly the last-probe boundary we track.
      if (probe.silent_streak > options_.max_silent_probes + 1 &&
          !probe.storm_flagged) {
        probe.storm_flagged = true;
        std::snprintf(buf, sizeof(buf),
                      "probe storm: %d consecutive unanswered probes for "
                      "call %" PRIu32 " to %s (budget %d)",
                      probe.silent_streak, seg.call_number,
                      ws.remote.ToString().c_str(),
                      options_.max_silent_probes);
        AddViolation(ws, buf);
      }
    }
    probe.last_ns = t;
    return;
  }

  // Data segment.
  Conversation& c = ConversationFor(state, ws.node, ws,
                                    seg.type == msg::MessageType::kCall);
  SentMessage& sent =
      state.sent[{static_cast<int>(seg.type), seg.call_number,
                  SentKeyDest(seg.type, ws.remote)}];
  if (sent.total_segments == 0) {
    sent.total_segments = seg.total_segments;
  } else if (sent.total_segments != seg.total_segments) {
    std::snprintf(buf, sizeof(buf),
                  "identifier reuse: %s %" PRIu32
                  " re-sent with a different segment count (%u vs %u)",
                  TypeName(seg.type), seg.call_number,
                  static_cast<unsigned>(seg.total_segments),
                  static_cast<unsigned>(sent.total_segments));
    AddViolation(ws, buf);
  }
  auto payload = sent.payloads.find(seg.segment_number);
  if (payload == sent.payloads.end()) {
    sent.payloads[seg.segment_number] = seg.data;
    ++c.cost.data_segments;
  } else if (payload->second != seg.data) {
    std::snprintf(buf, sizeof(buf),
                  "identifier reuse: %s %" PRIu32 " segment %u to %s "
                  "re-sent with different payload",
                  TypeName(seg.type), seg.call_number,
                  static_cast<unsigned>(seg.segment_number),
                  ws.remote.ToString().c_str());
    AddViolation(ws, buf);
  }
  uint8_t& max_sent =
      state.max_sent[{static_cast<int>(seg.type), seg.call_number}];
  max_sent = std::max(max_sent, seg.segment_number);

  const auto send_key = std::make_tuple(ws.remote,
                                        static_cast<int>(seg.type),
                                        seg.call_number, seg.segment_number);
  auto last = state.last_send.find(send_key);
  if (last != state.last_send.end()) {
    ++c.cost.retransmits;
    if (options_.retransmit_floor_ns > 0 &&
        t - last->second < options_.retransmit_floor_ns) {
      std::snprintf(buf, sizeof(buf),
                    "retransmit before timeout: %s %" PRIu32
                    " segment %u to %s after %" PRId64 "ns (floor %" PRId64
                    "ns)",
                    TypeName(seg.type), seg.call_number,
                    static_cast<unsigned>(seg.segment_number),
                    ws.remote.ToString().c_str(), t - last->second,
                    options_.retransmit_floor_ns);
      AddViolation(ws, buf);
    }
    last->second = t;
  } else {
    state.last_send[send_key] = t;
  }

  if (seg.type == msg::MessageType::kReturn && state.complete &&
      c.phase == Conversation::Phase::kCalling) {
    // First return activity from this node: the full call must have
    // arrived (Section 4.2 delivery ordering — a gap at delivery).
    auto call = state.received.find(
        {ws.remote, static_cast<int>(msg::MessageType::kCall),
         seg.call_number});
    if (call == state.received.end() || !call->second.Complete()) {
      std::snprintf(
          buf, sizeof(buf),
          "sequence gap at delivery: return %" PRIu32
          " sent to %s before the call fully arrived (%zu/%u segments)",
          seg.call_number, ws.remote.ToString().c_str(),
          call == state.received.end() ? size_t{0}
                                       : call->second.segments.size(),
          call == state.received.end()
              ? 0u
              : static_cast<unsigned>(call->second.total_segments));
      AddViolation(ws, buf);
    }
    AdvancePhase(c, Conversation::Phase::kCallDelivered);
  }
  if (seg.type == msg::MessageType::kReturn) {
    AdvancePhase(c, Conversation::Phase::kReturning);
  }
}

void WireAuditor::ObserveRecvRecord(NodeState& state, const WireSegment& ws) {
  const msg::Segment& seg = ws.segment;
  state.last_heard[ws.remote] = ws.packet.time_ns;
  char buf[192];

  if (seg.ack) {
    Conversation& c = ConversationFor(
        state, ws.node, ws, seg.type == msg::MessageType::kCall);
    ++c.cost.acks_received;
    const uint8_t k = seg.segment_number;
    if (k > 0 && state.complete) {
      auto max_sent = state.max_sent.find(
          {static_cast<int>(seg.type), seg.call_number});
      if (max_sent == state.max_sent.end() || max_sent->second < k) {
        std::snprintf(buf, sizeof(buf),
                      "ack for unsent segment: ack %u of %s %" PRIu32
                      " from %s (sent max %u)",
                      static_cast<unsigned>(k), TypeName(seg.type),
                      seg.call_number, ws.remote.ToString().c_str(),
                      max_sent == state.max_sent.end()
                          ? 0u
                          : static_cast<unsigned>(max_sent->second));
        AddViolation(ws, buf);
      }
    }
    // Completion bookkeeping from explicit acks.
    auto sent = state.sent.find({static_cast<int>(seg.type),
                                 seg.call_number,
                                 SentKeyDest(seg.type, ws.remote)});
    if (sent != state.sent.end() && sent->second.total_segments != 0 &&
        k >= sent->second.total_segments) {
      if (seg.type == msg::MessageType::kCall) {
        AdvancePhase(c, Conversation::Phase::kCallDelivered);
        state.final_call_ack.insert(seg.call_number);
      } else {
        AdvancePhase(c, Conversation::Phase::kDone);
        state.pending_returns[ws.remote].erase(seg.call_number);
      }
    }
    return;
  }

  if (seg.is_probe()) {
    // A peer probing us is its cost, not ours; only liveness tracking.
    ConversationFor(state, ws.node, ws, /*caller=*/false);
    return;
  }

  // Data segment.
  Conversation& c = ConversationFor(state, ws.node, ws,
                                    seg.type == msg::MessageType::kReturn);
  ReceivedMessage& r = state.received[{ws.remote,
                                       static_cast<int>(seg.type),
                                       seg.call_number}];
  if (r.total_segments == 0) {
    r.total_segments = seg.total_segments;
  }
  r.segments.insert(seg.segment_number);

  if (seg.type == msg::MessageType::kCall) {
    // A call implicitly acknowledges earlier returns to that peer
    // (Section 4.2.4): conversations still waiting on a return ack are
    // complete, with the explicit ack saved.
    auto pending = state.pending_returns.find(ws.remote);
    if (pending != state.pending_returns.end()) {
      auto it = pending->second.begin();
      while (it != pending->second.end() && *it < seg.call_number) {
        Conversation& served = state.conversations[{*it, false}];
        AdvancePhase(served, Conversation::Phase::kDone);
        ++served.cost.implicit_acks;
        it = pending->second.erase(it);
      }
    }
    if (r.Complete()) {
      AdvancePhase(c, Conversation::Phase::kCallDelivered);
    }
  } else if (r.Complete()) {
    // Caller view: full return ends the conversation; the return also
    // served as the final ack of the call unless one arrived
    // explicitly.
    if (c.phase != Conversation::Phase::kDone) {
      AdvancePhase(c, Conversation::Phase::kDone);
      if (state.final_call_ack.count(seg.call_number) == 0) {
        ++c.cost.implicit_acks;
      }
    }
  }
}

void WireAuditor::AddRecords(const std::vector<net::WirePacket>& records,
                             bool complete) {
  if (!complete) {
    report_.complete = false;
  }
  std::vector<WireSegment> decoded =
      DecodeRecords(records, &report_.undecodable);
  report_.records += records.size();
  for (const net::WirePacket& p : records) {
    if (p.send) {
      ++report_.packets;
      report_.bytes += p.payload.size();
    }
  }
  for (const WireSegment& ws : decoded) {
    NodeState& state = nodes_[ws.node];
    if (!complete) {
      state.complete = false;
    }
    if (ws.packet.send) {
      ObserveSendRecord(state, ws);
      // Track returns-in-flight for implicit-ack accounting.
      if (ws.segment.type == msg::MessageType::kReturn &&
          ws.segment.is_data()) {
        Conversation& c =
            state.conversations[{ws.segment.call_number, false}];
        if (c.phase != Conversation::Phase::kDone) {
          state.pending_returns[ws.remote].insert(ws.segment.call_number);
        }
      }
    } else {
      ObserveRecvRecord(state, ws);
    }
  }
}

void WireAuditor::AddCapture(const net::WireCaptureFile& capture) {
  AddRecords(capture.records, capture.dropped == 0 &&
                                  !capture.truncated_tail &&
                                  capture.skipped_lines == 0);
}

AuditReport WireAuditor::Finish() {
  AuditReport report = std::move(report_);
  report_ = AuditReport{};
  for (auto& [node, state] : nodes_) {
    for (auto& [key, conversation] : state.conversations) {
      report.conversations.push_back(std::move(conversation));
    }
  }
  std::sort(report.conversations.begin(), report.conversations.end(),
            [](const Conversation& a, const Conversation& b) {
              if (a.node != b.node) {
                return a.node < b.node;
              }
              if (a.call_number != b.call_number) {
                return a.call_number < b.call_number;
              }
              return a.caller && !b.caller;  // caller view first
            });
  nodes_.clear();
  return report;
}

AuditReport AuditRecords(const std::vector<net::WirePacket>& records,
                         const AuditOptions& options, bool complete) {
  WireAuditor auditor(options);
  auditor.AddRecords(records, complete);
  return auditor.Finish();
}

circus::StatusOr<AuditReport> AuditCaptureFiles(
    const std::vector<std::string>& paths, const AuditOptions& options) {
  WireAuditor auditor(options);
  for (const std::string& path : paths) {
    circus::StatusOr<net::WireCaptureFile> capture =
        net::ReadWireCaptureFile(path);
    if (!capture.ok()) {
      return capture.status();
    }
    auditor.AddCapture(*capture);
  }
  return auditor.Finish();
}

}  // namespace circus::obs::wire
