// Exporters for the obs event stream.
//
//  * ToJsonLines: one JSON object per event per line, in publish order —
//    the scripting-friendly format. Byte-identical across runs of the
//    same seed.
//  * ToChromeTrace: Chrome trace_event "JSON Object Format"
//    ({"traceEvents": [...]}) loadable in chrome://tracing or Perfetto.
//    Span kinds (call issue/collate, execute begin/end) pair into "X"
//    complete events; everything else becomes an instant. pid = sim host
//    id, tid = a small per-logical-thread index, and metadata records
//    give processes their host names and threads their ThreadId strings.
#ifndef SRC_OBS_EXPORT_H_
#define SRC_OBS_EXPORT_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/event.h"
#include "src/obs/json.h"

namespace circus::obs {

// The canonical JSONL rendering of one event (shared by ToJsonLines and
// the trace-shard writer); EventFromJson in src/obs/shard.h inverts it.
json::Value EventToJson(const Event& e);

std::string ToJsonLines(const std::vector<Event>& events);

std::string ToChromeTrace(
    const std::vector<Event>& events,
    const std::map<uint32_t, std::string>& host_names = {});

// Writes `content` to `path` (replacing it). kUnavailable on I/O error.
circus::Status WriteStringToFile(const std::string& path,
                                 const std::string& content);

}  // namespace circus::obs

#endif  // SRC_OBS_EXPORT_H_
