#include "src/obs/trace.h"

#include <cstdio>
#include <map>
#include <tuple>
#include <utility>

namespace circus::obs {

namespace {

// (thread, seq) — identifies one logical call across every host.
using CallKey = std::tuple<uint32_t, uint16_t, uint16_t, uint32_t>;
// (host, thread) — identifies one thread's activity on one host.
using StackKey = std::tuple<uint32_t, uint32_t, uint16_t, uint16_t>;

CallKey MakeCallKey(const Event& e) {
  return {e.thread.machine, e.thread.port, e.thread.local, e.thread_seq};
}

StackKey MakeStackKey(const Event& e) {
  return {e.host, e.thread.machine, e.thread.port, e.thread.local};
}

struct Node {
  Span span;
  std::vector<size_t> children;
  bool root = false;
};

Span Materialize(const std::vector<Node>& arena, size_t index) {
  Span out = arena[index].span;
  out.children.reserve(arena[index].children.size());
  for (const size_t child : arena[index].children) {
    out.children.push_back(Materialize(arena, child));
  }
  return out;
}

void RemoveFromStack(std::vector<size_t>& stack, size_t node) {
  for (size_t i = stack.size(); i > 0; --i) {
    if (stack[i - 1] == node) {
      stack.erase(stack.begin() + static_cast<long>(i - 1));
      return;
    }
  }
}

}  // namespace

std::vector<Span> AssembleSpans(const std::vector<Event>& events) {
  std::vector<Node> arena;
  // Per (host, thread): indices of open spans, innermost last.
  std::map<StackKey, std::vector<size_t>> stacks;
  // Per (thread, seq): call-span indices in issue order. Entries stay
  // after the call closes so a late member's execute still attaches.
  std::map<CallKey, std::vector<size_t>> calls;
  std::vector<size_t> roots;

  auto open_span = [&](const Event& e, Span::Kind kind) -> size_t {
    Node node;
    node.span.kind = kind;
    node.span.thread = e.thread;
    node.span.seq = e.thread_seq;
    node.span.host = e.host;
    node.span.module = e.a;
    node.span.procedure = e.b;
    node.span.begin_ns = e.time_ns;
    arena.push_back(std::move(node));
    return arena.size() - 1;
  };

  for (const Event& e : events) {
    switch (e.kind) {
      case EventKind::kCallIssue: {
        const size_t node = open_span(e, Span::Kind::kCall);
        auto& stack = stacks[MakeStackKey(e)];
        if (!stack.empty()) {
          arena[stack.back()].children.push_back(node);
        } else {
          arena[node].root = true;
          roots.push_back(node);
        }
        stack.push_back(node);
        calls[MakeCallKey(e)].push_back(node);
        break;
      }
      case EventKind::kCallCollate: {
        auto it = calls.find(MakeCallKey(e));
        if (it == calls.end()) {
          break;
        }
        for (const size_t node : it->second) {
          Span& span = arena[node].span;
          if (span.host == e.host && span.end_ns < 0) {
            span.end_ns = e.time_ns;
            span.ok = e.c != 0;
            RemoveFromStack(stacks[MakeStackKey(e)], node);
            break;
          }
        }
        break;
      }
      case EventKind::kExecuteBegin: {
        const size_t node = open_span(e, Span::Kind::kExecute);
        auto it = calls.find(MakeCallKey(e));
        size_t parent = SIZE_MAX;
        if (it != calls.end()) {
          // Attach to the earliest-issued call still open at this point
          // in the stream: replicated client members' concurrent calls
          // resolve to the first issuer, while a later reuse of the same
          // (thread, seq) — the thread's numbering continuing in another
          // process — cannot capture executions of a closed span.
          for (const size_t candidate : it->second) {
            if (arena[candidate].span.end_ns < 0) {
              parent = candidate;
              break;
            }
          }
          if (parent == SIZE_MAX && !it->second.empty()) {
            // Late member: its call already collated; attach to the
            // latest (temporally nearest) issuer.
            parent = it->second.back();
          }
        }
        if (parent != SIZE_MAX) {
          arena[parent].children.push_back(node);
        } else {
          arena[node].root = true;
          roots.push_back(node);
        }
        stacks[MakeStackKey(e)].push_back(node);
        break;
      }
      case EventKind::kExecuteEnd: {
        auto& stack = stacks[MakeStackKey(e)];
        for (size_t i = stack.size(); i > 0; --i) {
          Span& span = arena[stack[i - 1]].span;
          if (span.kind == Span::Kind::kExecute && span.seq == e.thread_seq &&
              span.end_ns < 0) {
            span.end_ns = e.time_ns;
            span.ok = e.c != 0;
            stack.erase(stack.begin() + static_cast<long>(i - 1));
            break;
          }
        }
        break;
      }
      default:
        break;
    }
  }

  std::vector<Span> out;
  out.reserve(roots.size());
  for (const size_t root : roots) {
    out.push_back(Materialize(arena, root));
  }
  return out;
}

std::string Span::Structure() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%s(%llu:%llu)%s",
                kind == Kind::kCall ? "call" : "exec",
                static_cast<unsigned long long>(module),
                static_cast<unsigned long long>(procedure), ok ? "" : "!");
  std::string out = buf;
  if (!children.empty()) {
    out += '{';
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ' ';
      out += children[i].Structure();
    }
    out += '}';
  }
  return out;
}

std::string Span::ToString() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%s(%llu:%llu)@h%u %s#%u [%lld,%lld]%s",
                kind == Kind::kCall ? "call" : "exec",
                static_cast<unsigned long long>(module),
                static_cast<unsigned long long>(procedure), host,
                thread.ToString().c_str(), seq,
                static_cast<long long>(begin_ns),
                static_cast<long long>(end_ns), ok ? "" : "!");
  std::string out = buf;
  if (!children.empty()) {
    out += '{';
    for (size_t i = 0; i < children.size(); ++i) {
      if (i > 0) out += ' ';
      out += children[i].ToString();
    }
    out += '}';
  }
  return out;
}

size_t Span::TotalSpans() const {
  size_t n = 1;
  for (const Span& child : children) {
    n += child.TotalSpans();
  }
  return n;
}

std::string StructureOf(const std::vector<Span>& roots) {
  std::string out;
  for (const Span& root : roots) {
    out += root.Structure();
    out += '\n';
  }
  return out;
}

std::string Render(const std::vector<Span>& roots) {
  std::string out;
  for (const Span& root : roots) {
    out += root.ToString();
    out += '\n';
  }
  return out;
}

}  // namespace circus::obs
