// Metrics registry: named counters and histograms, snapshot-able at any
// simulated time. Everything is single-threaded (the simulation is), so
// counters are plain integers and snapshots are trivially consistent.
//
// Pointers returned by GetCounter/GetHistogram are stable for the
// registry's lifetime; publishers look their instruments up once at
// construction and bump them on the hot path without a map lookup.
#ifndef SRC_OBS_METRICS_H_
#define SRC_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace circus::obs {

class MetricsRegistry;

class Counter {
 public:
  void Increment() { ++value_; }
  void Add(uint64_t n) { value_ += n; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Fixed-cost histogram: exact count/sum/min/max plus power-of-two
// buckets for percentile estimates (a percentile resolves to its
// bucket's upper bound, clamped to the observed max — deterministic and
// good to within 2x, which is plenty for protocol latencies).
class Histogram {
 public:
  void Observe(double value);

  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double min() const { return min_; }
  double max() const { return max_; }
  double mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  // p in [0, 1]; 0 with no observations.
  double Percentile(double p) const;
  // (upper bound, cumulative count) per occupied power-of-two bucket,
  // ascending — the Prometheus `_bucket{le=...}` series (without the
  // implicit +Inf row, which equals count()).
  std::vector<std::pair<double, uint64_t>> CumulativeBuckets() const;

 private:
  uint64_t count_ = 0;
  double sum_ = 0;
  double min_ = 0;
  double max_ = 0;
  // bucket b holds values in (2^(b-1), 2^b]; values <= 0 land in the
  // sentinel bucket INT32_MIN.
  std::map<int, uint64_t> buckets_;
};

// An instantaneous level (queue depth, busy share, backlog). Beyond the
// current value a gauge keeps min/max and a clock-weighted integral, so
// a snapshot reports the *time-weighted* mean over the gauge's lifetime
// — a gauge that sat at 100 for a second and 0 for a millisecond means
// 100, not 50. The clock comes from the owning registry (virtual time
// in a sim World, wall time in rt), which keeps sim snapshots
// deterministic and byte-stable per seed.
class Gauge {
 public:
  void Set(double value);
  void Add(double delta) { Set(value_ + delta); }
  double value() const { return value_; }
  double min() const { return min_; }
  double max() const { return max_; }
  // Time-weighted mean from the first Set through `now_ns`; the plain
  // value while the clock has not advanced past the first Set.
  double MeanUntil(int64_t now_ns) const;

 private:
  friend class MetricsRegistry;
  explicit Gauge(const MetricsRegistry* owner) : owner_(owner) {}

  const MetricsRegistry* owner_;
  bool initialized_ = false;
  double value_ = 0;
  double min_ = 0;
  double max_ = 0;
  int64_t first_ns_ = 0;
  int64_t last_ns_ = 0;
  double integral_ = 0;  // sum of value * dt since first_ns_
};

struct GaugeStats {
  double value = 0;
  double min = 0;
  double max = 0;
  double mean = 0;  // time-weighted, through the snapshot time
};

struct HistogramStats {
  uint64_t count = 0;
  double sum = 0;
  double min = 0;
  double max = 0;
  double mean = 0;
  double p50 = 0;
  double p90 = 0;
  double p99 = 0;
  // Power-of-two (upper bound, cumulative count) pairs, ascending.
  std::vector<std::pair<double, uint64_t>> buckets;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // Finds or creates; the returned pointer stays valid for the
  // registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  Gauge* GetGauge(const std::string& name);

  // The clock gauges weight their means by. World installs the sim
  // clock, Runtime the wall clock; without one, gauges degrade to
  // last-value-only (mean == value).
  void SetClock(std::function<int64_t()> now_ns) {
    clock_ = std::move(now_ns);
  }
  int64_t NowNs() const { return clock_ ? clock_() : 0; }

  // A consistent view of every instrument at `time_ns` (simulated).
  struct Snapshot {
    int64_t time_ns = 0;
    std::map<std::string, uint64_t> counters;
    std::map<std::string, GaugeStats> gauges;
    std::map<std::string, HistogramStats> histograms;

    // Deterministic human-readable rendering, one instrument per line.
    std::string ToString() const;
    // Prometheus text exposition format (version 0.0.4): counters as
    // `circus_<name>_total`, gauges as `circus_<name>` plus
    // `_min`/`_max`/`_avg` companions (avg is the time-weighted mean),
    // histograms twice — as summaries with
    // p50/p90/p99 quantiles plus _sum/_count, and as native histograms
    // (`circus_<name>_hist`) with cumulative power-of-two
    // `_bucket{le=...}` series. Dots in instrument names become
    // underscores. Served by the circus_node `metrics` endpoint.
    std::string ToPrometheus() const;
  };
  Snapshot Snap(int64_t time_ns) const;

 private:
  std::function<int64_t()> clock_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace circus::obs

#endif  // SRC_OBS_METRICS_H_
