// Per-node trace shards: the on-disk event stream of one process.
//
// A shard is a JSONL file — a header object first ({"shard":
// "circus-trace", ...} with the node's identity and incarnation), then
// one event per line in the canonical EventToJson rendering. Each
// circus_node writes its own shard; circus_trace_merge (and the
// functions in src/obs/merge.h) join N shards from N processes into one
// Chrome trace, correlating by the propagated Section 3.4.1 thread ID.
//
// The writer buffers events in a bounded ring and appends to the file
// only on Flush(), so a hot protocol path never blocks on disk I/O and
// a wedged filesystem costs bounded memory. A crash between flushes
// loses at most the unflushed tail; a crash *during* a flush leaves at
// most one partial final line, which ReadShardFile tolerates by design.
#ifndef SRC_OBS_SHARD_H_
#define SRC_OBS_SHARD_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/obs/bus.h"
#include "src/obs/event.h"
#include "src/obs/json.h"

namespace circus::obs {

// Identity of the process a shard came from, recorded in the header.
struct ShardInfo {
  std::string node;       // display name ("member0", "ringmaster", ...)
  std::string role;       // "ringmaster" | "member" | "client" | "test"
  std::string address;    // listen address, "127.0.0.1:9001"
  uint64_t incarnation = 0;
  std::string clock = "realtime";  // "realtime" (rt) or "sim" (World)

  json::Value ToJson() const;
};

class ShardWriter {
 public:
  // Opens `path` for writing (truncating) and writes the header line
  // immediately. An empty `path` makes a ring-only writer: events are
  // retained for recent()/spans introspection but never hit disk.
  // `capacity` bounds both the recent-events ring and the unflushed
  // line buffer; overflow drops the oldest entries and counts them.
  ShardWriter(std::string path, ShardInfo info, size_t capacity = 8192);
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;
  // Detaches from the bus (if attached) and flushes the tail.
  ~ShardWriter();

  // Subscribes to `bus`; only events whose host id matches
  // `host_filter` are recorded (0 records everything — the single-node
  // daemon case; tests carving one World into per-node shards pass the
  // node's host id).
  void Attach(EventBus* bus, uint32_t host_filter = 0);
  void Detach();

  // Records one event directly (the Attach subscription calls this).
  void Observe(const Event& event);

  // Appends the buffered lines to the file and fflushes. No-op for a
  // ring-only writer. kUnavailable on I/O error (buffered lines are
  // kept for a retry).
  circus::Status Flush();

  const ShardInfo& info() const { return info_; }
  const std::string& path() const { return path_; }
  // False when a file shard could not be opened or its header failed to
  // write (a ring-only writer is always ok).
  bool ok() const {
    return path_.empty() || (file_ != nullptr && !header_write_failed_);
  }
  // The most recent events, oldest first (bounded by `capacity`); the
  // introspection endpoint assembles its `spans` reply from these.
  std::vector<Event> Recent() const;
  uint64_t observed() const { return observed_; }
  uint64_t dropped() const { return dropped_; }
  // Lines buffered but not yet on disk (the flush backlog).
  size_t pending() const { return pending_lines_.size(); }
  size_t capacity() const { return capacity_; }
  uint64_t flushes() const { return flushes_; }
  uint64_t flush_failures() const { return flush_failures_; }

 private:
  std::string path_;
  ShardInfo info_;
  size_t capacity_;
  std::FILE* file_ = nullptr;
  bool header_write_failed_ = false;
  EventBus* bus_ = nullptr;
  EventBus::SubscriberId subscriber_id_ = 0;
  uint32_t host_filter_ = 0;
  std::deque<Event> recent_;
  std::deque<std::string> pending_lines_;
  uint64_t observed_ = 0;
  uint64_t dropped_ = 0;
  uint64_t dropped_unreported_ = 0;  // drops since the last flushed marker
  uint64_t flushes_ = 0;
  uint64_t flush_failures_ = 0;
};

// Inverse of EventToJson. False when `line` is not an event object (a
// header, a drop marker, an unknown kind) — callers skip such lines.
bool EventFromJson(const json::Value& value, Event* out);

// One parsed shard file.
struct ShardFile {
  ShardInfo info;
  std::vector<Event> events;
  // Diagnostics: lines that did not parse as events. A partial final
  // line (crash mid-flush) sets truncated_tail instead of failing.
  size_t skipped_lines = 0;
  bool truncated_tail = false;
};

// Reads and parses a shard. Fails only when the file cannot be read or
// the header line is missing/foreign; event lines that fail to parse
// are skipped (counted), and a partial final line is tolerated.
circus::StatusOr<ShardFile> ReadShardFile(const std::string& path);

}  // namespace circus::obs

#endif  // SRC_OBS_SHARD_H_
