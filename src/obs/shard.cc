#include "src/obs/shard.h"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/export.h"

namespace circus::obs {

namespace {

constexpr int kShardVersion = 1;

// "10.0.0.3:9000" -> packed (host << 16 | port); 0 when malformed.
uint64_t ParsePackedAddress(const std::string& text) {
  unsigned a = 0, b = 0, c = 0, d = 0, port = 0;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u:%u", &a, &b, &c, &d, &port) !=
          5 ||
      a > 255 || b > 255 || c > 255 || d > 255 || port > 65535) {
    return 0;
  }
  const uint32_t host = (a << 24) | (b << 16) | (c << 8) | d;
  return PackAddress(host, static_cast<uint16_t>(port));
}

json::Value DropMarker(uint64_t count) {
  json::Value obj = json::Value::Object();
  obj.Set("shard_drop", count);
  return obj;
}

}  // namespace

json::Value ShardInfo::ToJson() const {
  json::Value obj = json::Value::Object();
  obj.Set("shard", "circus-trace");
  obj.Set("version", kShardVersion);
  obj.Set("node", node);
  obj.Set("role", role);
  obj.Set("addr", address);
  obj.Set("incarnation", incarnation);
  obj.Set("clock", clock);
  return obj;
}

ShardWriter::ShardWriter(std::string path, ShardInfo info, size_t capacity)
    : path_(std::move(path)), info_(std::move(info)), capacity_(capacity) {
  if (path_.empty()) {
    return;
  }
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    header_write_failed_ = true;
    return;
  }
  const std::string header = info_.ToJson().Dump() + "\n";
  if (std::fwrite(header.data(), 1, header.size(), file_) !=
      header.size()) {
    header_write_failed_ = true;
  }
  std::fflush(file_);
}

ShardWriter::~ShardWriter() {
  Detach();
  Flush();
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void ShardWriter::Attach(EventBus* bus, uint32_t host_filter) {
  Detach();
  bus_ = bus;
  host_filter_ = host_filter;
  subscriber_id_ =
      bus_->Subscribe([this](const Event& e) { Observe(e); });
}

void ShardWriter::Detach() {
  if (bus_ != nullptr) {
    bus_->Unsubscribe(subscriber_id_);
    bus_ = nullptr;
  }
}

void ShardWriter::Observe(const Event& event) {
  if (host_filter_ != 0 && event.host != host_filter_) {
    return;
  }
  ++observed_;
  recent_.push_back(event);
  while (recent_.size() > capacity_) {
    recent_.pop_front();
  }
  if (file_ == nullptr) {
    return;
  }
  pending_lines_.push_back(EventToJson(event).Dump());
  while (pending_lines_.size() > capacity_) {
    pending_lines_.pop_front();
    ++dropped_;
    ++dropped_unreported_;
  }
}

circus::Status ShardWriter::Flush() {
  if (file_ == nullptr) {
    return path_.empty()
               ? circus::Status::Ok()
               : circus::Status(circus::ErrorCode::kUnavailable,
                                "shard file not open: " + path_);
  }
  ++flushes_;
  if (dropped_unreported_ != 0) {
    pending_lines_.push_front(DropMarker(dropped_unreported_).Dump());
    dropped_unreported_ = 0;
  }
  while (!pending_lines_.empty()) {
    const std::string& line = pending_lines_.front();
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fputc('\n', file_) == EOF) {
      ++flush_failures_;
      return circus::Status(circus::ErrorCode::kUnavailable,
                            "short write to shard " + path_);
    }
    pending_lines_.pop_front();
  }
  if (std::fflush(file_) != 0) {
    ++flush_failures_;
    return circus::Status(circus::ErrorCode::kUnavailable,
                          "fflush failed for shard " + path_);
  }
  return circus::Status::Ok();
}

std::vector<Event> ShardWriter::Recent() const {
  return std::vector<Event>(recent_.begin(), recent_.end());
}

bool EventFromJson(const json::Value& value, Event* out) {
  if (value.type() != json::Value::Type::kObject) {
    return false;
  }
  const json::Value* kind = value.Find("kind");
  const json::Value* t_ns = value.Find("t_ns");
  if (kind == nullptr || t_ns == nullptr ||
      kind->type() != json::Value::Type::kString) {
    return false;
  }
  Event e;
  if (!EventKindFromName(kind->as_string(), &e.kind)) {
    return false;
  }
  e.time_ns = t_ns->AsI64();
  if (const json::Value* host = value.Find("host")) {
    e.host = static_cast<uint32_t>(host->AsU64());
  }
  if (const json::Value* inc = value.Find("inc")) {
    e.incarnation = inc->AsU64();
  }
  if (const json::Value* origin = value.Find("origin");
      origin != nullptr && origin->type() == json::Value::Type::kString) {
    e.origin = ParsePackedAddress(origin->as_string());
  }
  if (const json::Value* thread = value.Find("thread");
      thread != nullptr && thread->type() == json::Value::Type::kString) {
    unsigned machine = 0, port = 0, local = 0;
    if (std::sscanf(thread->as_string().c_str(), "thread:%x:%u:%u",
                    &machine, &port, &local) == 3) {
      e.thread.machine = machine;
      e.thread.port = static_cast<uint16_t>(port);
      e.thread.local = static_cast<uint16_t>(local);
    }
  }
  if (const json::Value* seq = value.Find("seq")) {
    e.thread_seq = static_cast<uint32_t>(seq->AsU64());
  }
  if (const json::Value* a = value.Find("a")) e.a = a->AsU64();
  if (const json::Value* b = value.Find("b")) e.b = b->AsU64();
  if (const json::Value* c = value.Find("c")) e.c = c->AsU64();
  if (const json::Value* detail = value.Find("detail");
      detail != nullptr && detail->type() == json::Value::Type::kString) {
    e.detail = detail->as_string();
  }
  // payload bytes are exported as a size only; the bytes themselves do
  // not round-trip through a shard.
  *out = e;
  return true;
}

circus::StatusOr<ShardFile> ReadShardFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return circus::Status(circus::ErrorCode::kNotFound,
                          "cannot open shard: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  ShardFile shard;
  bool have_header = false;
  size_t pos = 0;
  while (pos < content.size()) {
    const size_t nl = content.find('\n', pos);
    const bool has_newline = nl != std::string::npos;
    const std::string line =
        content.substr(pos, has_newline ? nl - pos : std::string::npos);
    pos = has_newline ? nl + 1 : content.size();
    if (line.empty()) {
      continue;
    }
    circus::StatusOr<json::Value> parsed = json::Parse(line);
    if (!parsed.ok()) {
      if (!has_newline) {
        // Partial final line: the writer crashed mid-flush. Tolerated.
        shard.truncated_tail = true;
      } else {
        ++shard.skipped_lines;
      }
      continue;
    }
    if (!have_header) {
      const json::Value* magic = parsed->Find("shard");
      if (magic == nullptr ||
          magic->type() != json::Value::Type::kString ||
          magic->as_string() != "circus-trace") {
        return circus::Status(circus::ErrorCode::kInvalidArgument,
                              path + ": not a circus trace shard");
      }
      if (const json::Value* v = parsed->Find("node");
          v != nullptr && v->type() == json::Value::Type::kString) {
        shard.info.node = v->as_string();
      }
      if (const json::Value* v = parsed->Find("role");
          v != nullptr && v->type() == json::Value::Type::kString) {
        shard.info.role = v->as_string();
      }
      if (const json::Value* v = parsed->Find("addr");
          v != nullptr && v->type() == json::Value::Type::kString) {
        shard.info.address = v->as_string();
      }
      if (const json::Value* v = parsed->Find("incarnation")) {
        shard.info.incarnation = v->AsU64();
      }
      if (const json::Value* v = parsed->Find("clock");
          v != nullptr && v->type() == json::Value::Type::kString) {
        shard.info.clock = v->as_string();
      }
      have_header = true;
      continue;
    }
    Event e;
    if (EventFromJson(*parsed, &e)) {
      shard.events.push_back(std::move(e));
    } else if (parsed->Find("shard_drop") == nullptr) {
      // Drop markers are expected non-event lines; anything else is a
      // skip worth surfacing.
      ++shard.skipped_lines;
    }
  }
  if (!have_header) {
    return circus::Status(circus::ErrorCode::kInvalidArgument,
                          path + ": missing shard header line");
  }
  return shard;
}

}  // namespace circus::obs
