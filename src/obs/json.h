// A minimal JSON value, writer, and parser, sufficient for the
// repository's export formats (Chrome trace_event files, JSONL streams,
// BENCH_*.json, trace shards). No external dependency; output is
// deterministic — object keys keep insertion order and doubles always
// render the same way.
#ifndef SRC_OBS_JSON_H_
#define SRC_OBS_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/status.h"

namespace circus::obs::json {

// JSON string escaping (no surrounding quotes), RFC 8259-complete:
// every control character U+0000..U+001F is escaped (the short forms
// \b \f \n \r \t where they exist, \u00xx otherwise), as are '"' and
// '\\'. Well-formed UTF-8 sequences pass through unchanged; bytes that
// are not part of a valid UTF-8 sequence are replaced with U+FFFD
// (escaped as �) so the output is always a valid RFC 8259 string.
std::string Escape(std::string_view s);

class Value {
 public:
  enum class Type { kNull, kBool, kInt, kUint, kDouble, kString, kArray,
                    kObject };

  Value() = default;
  Value(bool b) : type_(Type::kBool), bool_(b) {}                 // NOLINT
  Value(int v) : type_(Type::kInt), int_(v) {}                    // NOLINT
  Value(int64_t v) : type_(Type::kInt), int_(v) {}                // NOLINT
  Value(uint64_t v) : type_(Type::kUint), uint_(v) {}             // NOLINT
  Value(double v) : type_(Type::kDouble), double_(v) {}           // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(const char* s) : type_(Type::kString), str_(s) {}         // NOLINT

  static Value Array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value Object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  Type type() const { return type_; }

  // Object: appends (keys are assumed unique; insertion order is kept).
  Value& Set(std::string key, Value value);
  // Array: appends.
  Value& Append(Value value);

  // Object lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;
  // Array/object element count.
  size_t size() const;
  const std::vector<Value>& items() const { return items_; }

  bool as_bool() const { return bool_; }
  int64_t as_int() const { return int_; }
  uint64_t as_uint() const { return uint_; }
  double as_double() const;
  const std::string& as_string() const { return str_; }

  // Numeric accessors that convert across kInt/kUint/kDouble (parsed
  // documents store whichever representation the text implied).
  int64_t AsI64() const;
  uint64_t AsU64() const;

  // Compact single-line rendering.
  std::string Dump() const;

 private:
  void DumpTo(std::string& out) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  int64_t int_ = 0;
  uint64_t uint_ = 0;
  double double_ = 0;
  std::string str_;
  std::vector<Value> items_;                          // array elements
  std::vector<std::pair<std::string, Value>> members_;  // object members
};

// Parses one JSON document (the full inverse of Dump/Escape, including
// \uXXXX escapes and surrogate pairs). Trailing non-whitespace after the
// document, malformed text, and nesting deeper than an internal limit
// fail with kInvalidArgument.
circus::StatusOr<Value> Parse(std::string_view text);

}  // namespace circus::obs::json

#endif  // SRC_OBS_JSON_H_
