// Typed observability events. Every protocol layer publishes these to the
// per-World obs::EventBus (src/obs/bus.h); exporters (src/obs/export.h)
// and the TraceAssembler (src/obs/trace.h) consume them.
//
// The correlation key is the propagated logical thread of Section 3.4.1:
// one replicated call fans out across every troupe member, but all the
// resulting events carry the same (thread, thread_seq) pair, so the whole
// exchange reconstructs into a single trace tree. Timestamps are
// simulated time — never wall clocks — so an event stream is a pure
// function of the World seed and replays byte-for-byte.
//
// This library depends only on src/common so that every layer (net, msg,
// core, txn, binding, chaos) can publish without dependency cycles.
// obs::ThreadRef mirrors core::ThreadId field-for-field; publishers
// convert at the call site.
#ifndef SRC_OBS_EVENT_H_
#define SRC_OBS_EVENT_H_

#include <compare>
#include <cstdint>
#include <string>
#include <string_view>

#include "src/common/bytes.h"

namespace circus::obs {

// What happened. The `a`/`b`/`c` fields of Event are kind-specific;
// their meaning is documented per group below.
enum class EventKind : uint8_t {
  // --- net: one per send operation (multicast counts once) ---
  // a = packed source address, b = packed destination address,
  // c = payload bytes. (Pack: host << 16 | port.)
  kPacketSend = 0,

  // --- msg: paired message layer (origin = packed local address,
  //     a = packed peer address, b = call number, c = segment number
  //     unless noted) ---
  kSegmentSend,           // first transmission of a data segment
  kSegmentRetransmit,     // retransmission of an unacked segment
  kAckSend,               // explicit ack (c = acknowledgment number)
  kProbeSend,             // crash-detection probe (c = probe round)
  kMessageDelivered,      // fully reassembled message handed up
  kDuplicateSuppressed,   // completed exchange re-acked, not re-delivered
  kPeerCrashDetected,     // retransmit/probe budget exhausted

  // --- core: replicated procedure calls (thread + thread_seq set,
  //     a = module, b = procedure; payload = marshalled args/result —
  //     populated so trace consumers can replay Section 3.3 histories) ---
  kCallIssue,             // client issues call thread_seq (c = troupe size)
  kCallCollate,           // collator produced the call's outcome (c = 1 ok)
  kExecuteBegin,          // server member starts executing the call
  kExecuteEnd,            // server member finished (c = 1 ok)
  kLateReplyServed,       // buffered return re-sent to a lagging member
  kStaleBindingReject,    // call rejected: caller's binding is stale

  // --- txn: troupe commit (thread = transaction's thread,
  //     c = transaction number) ---
  kTxnVote,               // member's ready_to_commit vote (a = 1 commit)
  kTxnDecision,           // coordinator's decision (a = 1 commit)
  kTxnRetry,              // client restarts after deadlock abort (a = attempt)
  kTxnResolved,           // transaction finished for good (a = 1 committed)

  // --- txn: ordered broadcast (a = message id, b = logical time) ---
  kBroadcastPropose,      // member proposes a delivery time
  kBroadcastAccept,       // sender-chosen final time accepted
  kBroadcastDeliver,      // message delivered in final-time order

  // --- binding: ringmaster + reconfigurer (a = troupe id value) ---
  kTroupeRegistered,      // ringmaster registered a troupe (detail = name)
  kTroupeMemberAdded,     // member added to a registration (detail = addr)
  kTroupeMemberRemoved,   // member removed (detail = addr)
  kReconfigSweep,         // maintenance sweep done (a = launched, b = retired)

  // --- rt: real-runtime diagnostics (only published by src/rt) ---
  kLoopWakeup,            // epoll wakeup (a = ready fds, b = 1 if the
                          // timer fired, c = timer slack vs. deadline, ns)
  kSocketStall,           // sendto hit EAGAIN/ENOBUFS backpressure
                          // (a = packed destination, c = errno)

  // --- core: latency-attribution boundary events (thread + thread_seq
  //     set, a = module, b = procedure). These mark the stage boundaries
  //     that kCallIssue/kExecuteBegin alone cannot resolve; the
  //     LatencyAttributor (src/obs/latency.h) telescopes them into a
  //     per-stage timeline. ---
  kCallFanout,            // client finished marshalling, first segment of
                          // the fan-out is about to leave (c = the
                          // paired-message call number shared by every
                          // member leg — the join key to segment events)
  kCallAdmit,             // server admitted the first message of an
                          // inbound call to the dispatch queue
                          // (c = paired-message call number)

  // --- obs: diagnostics emitted by observers themselves ---
  kSlowCall,              // a call exceeded the slow-call threshold
                          // (a = end-to-end ns, b = threshold ns,
                          // detail = per-stage breakdown)
  kSaturation,            // a resource crossed a saturation level
                          // (detail = resource name, a = utilization in
                          // basis points, b = new level 0 ok / 1 high /
                          // 2 saturated, c = queue depth)
};

// Stable lower_snake name for exports ("segment_send", "call_issue", ...).
const char* EventKindName(EventKind kind);

// Inverse of EventKindName; false when `name` names no kind (e.g. a
// foreign or future shard line — callers skip those tolerantly).
bool EventKindFromName(std::string_view name, EventKind* out);

// Mirrors core::ThreadId (machine, port, local) without depending on
// src/core. A value-initialised ThreadRef means "no thread": events below
// the stub layer (segments, packets) are not thread-attributed.
struct ThreadRef {
  uint32_t machine = 0;
  uint16_t port = 0;
  uint16_t local = 0;

  constexpr auto operator<=>(const ThreadRef&) const = default;
  bool zero() const { return machine == 0 && port == 0 && local == 0; }
  // Same rendering as core::ThreadId::ToString so keys line up across
  // the obs stream and model::TraceRecorder: "thread:%08x:%u:%u".
  std::string ToString() const;
};

// Packs a (host address, port) pair into the a/b/origin fields the same
// way NetAddressHash does: host << 16 | port.
constexpr uint64_t PackAddress(uint32_t host, uint16_t port) {
  return (static_cast<uint64_t>(host) << 16) | port;
}
constexpr uint32_t PackedAddressHost(uint64_t packed) {
  return static_cast<uint32_t>(packed >> 16);
}
constexpr uint16_t PackedAddressPort(uint64_t packed) {
  return static_cast<uint16_t>(packed & 0xFFFF);
}
// "10.0.0.3:9000" from a packed address (dotted-quad, like
// net::NetAddress::ToString).
std::string PackedAddressToString(uint64_t packed);

struct Event {
  int64_t time_ns = -1;  // simulated time; stamped by the bus if < 0
  EventKind kind = EventKind::kPacketSend;
  uint32_t host = 0;     // sim host id of the publisher (0 = none)
  // Per-process incarnation stamped by the bus (0 inside the simulated
  // World). Real-runtime nodes derive a fresh value per OS process so a
  // merged multi-process trace can tell a rebooted node from its
  // predecessor even though both carry the same address.
  uint64_t incarnation = 0;
  uint64_t origin = 0;   // packed address of the publishing endpoint/process
  ThreadRef thread;      // logical thread (zero below the stub layer)
  uint32_t thread_seq = 0;  // per-thread call sequence number
  uint64_t a = 0;        // kind-specific (see EventKind)
  uint64_t b = 0;
  uint64_t c = 0;
  circus::Bytes payload;  // kind-specific bytes (call args / results)
  std::string detail;     // human-readable annotation (name, txn id, ...)
};

}  // namespace circus::obs

#endif  // SRC_OBS_EVENT_H_
