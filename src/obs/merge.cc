#include "src/obs/merge.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <deque>
#include <utility>

namespace circus::obs {

namespace {

// (peer packed address, call number) -> earliest event time. Earliest
// wins so retransmitted or multi-segment messages contribute their
// first transmission / first delivery.
using ExchangeIndex = std::map<std::pair<uint64_t, uint64_t>, int64_t>;

struct ShardIndex {
  ExchangeIndex sends;      // kSegmentSend
  ExchangeIndex delivered;  // kMessageDelivered
  uint64_t local = 0;       // this shard's packed endpoint address
};

void IndexEarliest(ExchangeIndex& index, uint64_t peer, uint64_t call,
                   int64_t t_ns) {
  auto [it, inserted] = index.emplace(std::make_pair(peer, call), t_ns);
  if (!inserted && t_ns < it->second) {
    it->second = t_ns;
  }
}

ShardIndex BuildIndex(const ShardFile& shard) {
  ShardIndex index;
  std::map<uint64_t, size_t> origin_votes;
  for (const Event& e : shard.events) {
    if (e.kind == EventKind::kSegmentSend) {
      IndexEarliest(index.sends, e.a, e.b, e.time_ns);
    } else if (e.kind == EventKind::kMessageDelivered) {
      IndexEarliest(index.delivered, e.a, e.b, e.time_ns);
    } else {
      continue;
    }
    if (e.origin != 0) {
      ++origin_votes[e.origin];
    }
  }
  // The shard's own endpoint address: what its paired-message events
  // call `origin`. Majority vote tolerates a stray foreign line.
  size_t best = 0;
  for (const auto& [origin, votes] : origin_votes) {
    if (votes > best) {
      best = votes;
      index.local = origin;
    }
  }
  return index;
}

// All offset(b - a) samples derivable from complete exchanges between
// the two shards, either direction.
std::vector<int64_t> OffsetSamples(const ShardIndex& a,
                                   const ShardIndex& b) {
  std::vector<int64_t> samples;
  if (a.local == 0 || b.local == 0) {
    return samples;
  }
  for (const auto& [key, t1] : a.sends) {
    const auto& [peer, call] = key;
    if (peer != b.local) {
      continue;
    }
    // Candidate exchange on call number `call`. Whichever side
    // initiated it, all four timestamps exist under the same key pair.
    const auto t2_it = b.delivered.find({a.local, call});
    const auto t3_it = b.sends.find({a.local, call});
    const auto t4_it = a.delivered.find({b.local, call});
    if (t2_it == b.delivered.end() || t3_it == b.sends.end() ||
        t4_it == a.delivered.end()) {
      continue;
    }
    const int64_t t2 = t2_it->second;
    const int64_t t3 = t3_it->second;
    const int64_t t4 = t4_it->second;
    // The estimate is symmetric in who initiated: labelling the b-side
    // timestamps (t2, t3) and the a-side (t1, t4), the b-initiated
    // algebra -((t4 - t3) + (t1 - t2)) / 2 reduces to the same
    // expression. Ordering is checked only to reject a quadruple whose
    // clock stepped mid-call; ties are legitimate (the IoLoop stamps a
    // whole wakeup batch with one wall reading, so a fast handler
    // delivers and replies at the same nanosecond).
    if ((t1 <= t4 && t2 <= t3) || (t4 <= t1 && t3 <= t2)) {
      samples.push_back(((t2 - t1) + (t3 - t4)) / 2);
    }
  }
  return samples;
}

}  // namespace

circus::StatusOr<MergeResult> MergeShards(const std::vector<ShardFile>& shards,
                                          size_t reference) {
  if (shards.empty()) {
    return circus::Status(circus::ErrorCode::kInvalidArgument,
                          "no shards to merge");
  }
  if (reference >= shards.size()) {
    return circus::Status(circus::ErrorCode::kInvalidArgument,
                          "reference shard out of range");
  }

  MergeResult result;
  result.reference = reference;

  std::vector<ShardIndex> indexes;
  indexes.reserve(shards.size());
  for (const ShardFile& shard : shards) {
    indexes.push_back(BuildIndex(shard));
    result.skipped_lines += shard.skipped_lines;
    if (shard.truncated_tail) {
      ++result.truncated_tails;
    }
  }

  // Pairwise offsets: median sample per pair, spread as the residual.
  // adjacency[a][b] = offset(b - a).
  std::map<size_t, std::map<size_t, int64_t>> adjacency;
  for (size_t a = 0; a < shards.size(); ++a) {
    for (size_t b = a + 1; b < shards.size(); ++b) {
      std::vector<int64_t> samples = OffsetSamples(indexes[a], indexes[b]);
      if (samples.empty()) {
        continue;
      }
      std::sort(samples.begin(), samples.end());
      PairAlignment pair;
      pair.shard_a = a;
      pair.shard_b = b;
      pair.samples = samples.size();
      pair.offset_ns = samples[samples.size() / 2];
      pair.residual_ns = samples.back() - samples.front();
      result.pairs.push_back(pair);
      adjacency[a][b] = pair.offset_ns;
      adjacency[b][a] = -pair.offset_ns;
    }
  }

  // Breadth-first from the reference: shift[k] maps shard k's clock
  // into the reference clock. Crossing edge a->b (offset(b - a)) from
  // an aligned a means t_ref = t_b - offset(b - a) + shift[a].
  result.shift_ns.assign(shards.size(), 0);
  result.aligned.assign(shards.size(), false);
  result.aligned[reference] = true;
  std::deque<size_t> frontier{reference};
  while (!frontier.empty()) {
    const size_t at = frontier.front();
    frontier.pop_front();
    for (const auto& [next, offset] : adjacency[at]) {
      if (result.aligned[next]) {
        continue;
      }
      result.aligned[next] = true;
      result.shift_ns[next] = result.shift_ns[at] - offset;
      frontier.push_back(next);
    }
  }

  for (size_t k = 0; k < shards.size(); ++k) {
    const ShardInfo& info = shards[k].info;
    std::string name = info.node.empty() ? "shard" + std::to_string(k)
                                         : info.node;
    if (!info.address.empty()) {
      name += " (" + info.address + ")";
    }
    result.host_names[static_cast<uint32_t>(k) + 1] = std::move(name);
    for (Event e : shards[k].events) {
      e.host = static_cast<uint32_t>(k) + 1;
      e.time_ns += result.shift_ns[k];
      if (e.incarnation == 0) {
        e.incarnation = info.incarnation;
      }
      result.events.push_back(std::move(e));
    }
  }
  std::stable_sort(result.events.begin(), result.events.end(),
                   [](const Event& x, const Event& y) {
                     return x.time_ns < y.time_ns;
                   });
  return result;
}

std::string MergeReport(const std::vector<ShardFile>& shards,
                        const MergeResult& result) {
  std::string out;
  char line[256];
  for (size_t k = 0; k < shards.size(); ++k) {
    const ShardInfo& info = shards[k].info;
    std::snprintf(
        line, sizeof(line),
        "shard %zu: %s %s inc=%" PRIu64 " events=%zu shift=%+" PRId64
        "ns%s%s\n",
        k, info.node.empty() ? "?" : info.node.c_str(),
        info.address.empty() ? "?" : info.address.c_str(), info.incarnation,
        shards[k].events.size(), result.shift_ns[k],
        k == result.reference ? " (reference)"
        : result.aligned[k]   ? ""
                              : " (UNALIGNED: no paired traffic)",
        shards[k].truncated_tail ? " [truncated tail]" : "");
    out += line;
  }
  for (const PairAlignment& pair : result.pairs) {
    std::snprintf(line, sizeof(line),
                  "pair %zu<->%zu: samples=%zu offset=%+" PRId64
                  "ns residual=%" PRId64 "ns\n",
                  pair.shard_a, pair.shard_b, pair.samples, pair.offset_ns,
                  pair.residual_ns);
    out += line;
  }
  if (result.skipped_lines != 0) {
    std::snprintf(line, sizeof(line), "skipped lines: %zu\n",
                  result.skipped_lines);
    out += line;
  }
  return out;
}

}  // namespace circus::obs
