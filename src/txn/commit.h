// The troupe commit protocol (Section 5.3): optimistic and generic
// two-phase commit for replicated transactions, with no communication
// among troupe members.
//
// When a server troupe member is ready to commit a transaction it calls
// ready_to_commit(vote) *back at the client troupe* (roles reversed: a
// call-back protocol). The client-side CommitCoordinator answers no
// member until every member of the server troupe has called; if all vote
// true the answer is true (commit), otherwise false (abort). Theorem 5.1:
// members attempting to commit transactions in different orders block in
// their call-backs forever — the protocol transforms divergent
// serialization orders into a deadlock, which is then broken by the
// coordinator's decision timeout and retried with binary exponential
// back-off (Section 5.3.1).
#ifndef SRC_TXN_COMMIT_H_
#define SRC_TXN_COMMIT_H_

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "src/core/process.h"
#include "src/sim/notification.h"
#include "src/sim/random.h"
#include "src/txn/store.h"
#include "src/txn/types.h"

namespace circus::txn {

// Procedure numbers of the coordinator module exported by clients.
enum CoordinatorProcedure : core::ProcedureNumber {
  kReadyToCommit = 0,  // (txn, vote) -> decision
};

// Reserved procedure numbers a TransactionalServer adds to its module.
enum TransactionProcedure : core::ProcedureNumber {
  kFinishTransaction = 0xFF00,  // (txn, coordinator troupe) -> decision
  kAbortTransaction = 0xFF01,   // (txn) -> ()
};

// Client-side commit coordinator (one per client troupe member; with a
// replicated client, every member runs one and reaches the same
// decision).
class CommitCoordinator {
 public:
  explicit CommitCoordinator(core::RpcProcess* process);

  core::ModuleNumber module_number() const { return module_; }
  core::ModuleAddress address() const {
    return process_->module_address(module_);
  }

  // Declares a transaction: votes from `expected_votes` server troupe
  // members will arrive; if they have not all arrived `decision_timeout`
  // after the first waiter started waiting, the decision is abort
  // (breaking any cross-member serialization deadlock).
  void Begin(const TxnId& txn, int expected_votes,
             sim::Duration decision_timeout);

  // Deterministic per-thread transaction numbering: replicated client
  // members derive identical TxnIds for the same logical transaction.
  uint32_t NextTxnNum(const core::ThreadId& thread) {
    return ++txn_nums_[thread];
  }

  // Test/diagnostic access.
  uint64_t timeouts() const { return timeouts_; }

 private:
  struct Pending {
    explicit Pending(sim::Host* host) : decided(host) {}
    int expected = 0;
    int votes = 0;
    bool all_true = true;
    std::optional<bool> decision;
    sim::Notification decided;
    sim::Duration timeout;
  };

  sim::Task<circus::StatusOr<circus::Bytes>> HandleReadyToCommit(
      core::ServerCallContext& ctx, const circus::Bytes& args);

  core::RpcProcess* process_;
  core::ModuleNumber module_;
  std::map<TxnId, std::shared_ptr<Pending>> pending_;
  std::map<core::ThreadId, uint32_t> txn_nums_;
  uint64_t timeouts_ = 0;
};

// Server-side transactional module: a TxnStore plus the standard finish
// and abort procedures, wired to the troupe commit protocol. User
// procedures operate on store() within the transaction carried in their
// arguments.
class TransactionalServer {
 public:
  TransactionalServer(core::RpcProcess* process,
                      const std::string& module_name);

  core::RpcProcess* process() const { return process_; }
  core::ModuleNumber module_number() const { return module_; }
  TxnStore& store() { return *store_; }

  // Optional application veto: return false to vote abort.
  void SetVoteHook(std::function<bool(const TxnId&)> hook) {
    vote_hook_ = std::move(hook);
  }

  // Registers a user procedure on the transactional module.
  void ExportProcedure(core::ProcedureNumber number,
                       core::ProcedureHandler handler) {
    process_->ExportProcedure(module_, number, std::move(handler));
  }

 private:
  sim::Task<circus::StatusOr<circus::Bytes>> HandleFinish(
      core::ServerCallContext& ctx, const circus::Bytes& args);

  core::RpcProcess* process_;
  core::ModuleNumber module_;
  std::unique_ptr<TxnStore> store_;
  std::function<bool(const TxnId&)> vote_hook_;
};

// The server half of the commit protocol, factored out of
// TransactionalServer so that applications exporting their own modules
// (e.g. stub-generated ones under src/apps/) can participate in troupe
// commit without the reserved kFinishTransaction procedure: publishes
// the member's vote, calls ready_to_commit back at the client's
// coordinator troupe, applies the joint decision to `store` (commit on
// true -- downgraded to abort if the local commit fails -- abort on
// false), and returns the decision.
sim::Task<bool> FinishTransaction(core::RpcProcess* process,
                                  TxnStore* store, const TxnId& txn,
                                  const core::Troupe& coordinator,
                                  bool vote);

struct RunTransactionOptions {
  int max_attempts = 8;
  sim::Duration decision_timeout = sim::Duration::Seconds(2);
  sim::Duration backoff_base = sim::Duration::Millis(50);
  sim::Rng* rng = nullptr;  // jitter source; deterministic default if null
  // With a replicated client troupe, every member must name the same
  // coordinator troupe (one coordinator per client member) in the finish
  // call; unset means "just this process's coordinator".
  std::optional<core::Troupe> coordinator_troupe;
};

// The body makes replicated calls against the server troupe, passing the
// TxnId in its arguments; it returns Ok to request commit or an error to
// abort.
using TransactionBody =
    std::function<sim::Task<circus::Status>(const TxnId&)>;

// Runs `body` as a replicated transaction against `server`: begins a
// transaction, runs the body, drives the troupe commit protocol, and on
// deadlock-induced abort retries with binary exponential back-off.
// Returns Ok once a transaction instance commits at all members.
//
// Reference parameters: the returned Task must be co_awaited within the
// full expression of the RunTransaction(...) call (the usual pattern),
// so that argument temporaries outlive the coroutine.
sim::Task<circus::Status> RunTransaction(
    core::RpcProcess* process, CommitCoordinator* coordinator,
    core::ThreadId thread, const core::Troupe& server,
    core::ModuleNumber server_module, const TransactionBody& body,
    const RunTransactionOptions& options = {});

}  // namespace circus::txn

#endif  // SRC_TXN_COMMIT_H_
