#include "src/txn/commit.h"

#include <utility>

#include "src/binding/codec.h"
#include "src/common/log.h"
#include "src/obs/bus.h"
#include "src/obs/metrics.h"

namespace circus::txn {

using circus::Status;
using circus::StatusOr;
using core::ServerCallContext;
using core::Troupe;
using sim::Duration;
using sim::Task;

namespace {

// Publishes a transaction-protocol event keyed by the transaction's
// logical thread, so commit traffic lands in the same trace tree as the
// calls that ran the transaction body.
void PublishTxnEvent(core::RpcProcess* process, obs::EventKind kind,
                     const TxnId& txn, uint64_t a, std::string detail) {
  obs::EventBus* bus = process->event_bus();
  if (bus == nullptr || !bus->active()) {
    return;
  }
  obs::Event e;
  e.kind = kind;
  e.host = static_cast<uint32_t>(process->host()->id());
  const net::NetAddress self = process->process_address();
  e.origin = obs::PackAddress(self.host, self.port);
  e.thread = obs::ThreadRef{txn.thread.machine, txn.thread.port,
                            txn.thread.local};
  e.a = a;
  e.c = txn.num;
  e.detail = std::move(detail);
  bus->Publish(std::move(e));
}

}  // namespace

// ---------------------------------------------------------------------
// CommitCoordinator

CommitCoordinator::CommitCoordinator(core::RpcProcess* process)
    : process_(process) {
  module_ = process_->ExportModule("commit-coordinator");
  process_->ExportProcedure(
      module_, kReadyToCommit,
      [this](ServerCallContext& ctx,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        co_return co_await HandleReadyToCommit(ctx, args);
      });
}

void CommitCoordinator::Begin(const TxnId& txn, int expected_votes,
                              Duration decision_timeout) {
  auto pending = std::make_shared<Pending>(process_->host());
  pending->expected = expected_votes;
  pending->timeout = decision_timeout;
  pending_[txn] = std::move(pending);
}

Task<StatusOr<circus::Bytes>> CommitCoordinator::HandleReadyToCommit(
    ServerCallContext&, const circus::Bytes& args) {
  marshal::Reader r(args);
  const TxnId txn = TxnId::Read(r);
  const bool vote = r.ReadBool();
  if (!r.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad ready_to_commit args");
  }
  auto it = pending_.find(txn);
  if (it == pending_.end()) {
    // Unknown transaction (e.g. the client already gave up): abort.
    marshal::Writer w;
    w.WriteBool(false);
    co_return w.Take();
  }
  std::shared_ptr<Pending> p = it->second;
  ++p->votes;
  if (!vote) {
    p->all_true = false;
  }
  if (!p->decision.has_value()) {
    if (!p->all_true) {
      // Any abort vote decides immediately.
      p->decision = false;
      p->decided.Notify();
      PublishTxnEvent(process_, obs::EventKind::kTxnDecision, txn, 0,
                      txn.ToString() + " abort-vote");
    } else if (p->votes >= p->expected) {
      // Every member of the server troupe is ready: commit.
      p->decision = true;
      p->decided.Notify();
      PublishTxnEvent(process_, obs::EventKind::kTxnDecision, txn, 1,
                      txn.ToString());
    }
  }
  if (!p->decision.has_value()) {
    // Wait for the remaining members -- answering none of them until all
    // are ready is precisely what turns divergent commit orders into a
    // deadlock (Theorem 5.1). The timeout is the deadlock breaker.
    const uint64_t timer = process_->host()->executor().ScheduleAfter(
        p->timeout, [p, txn, this] {
          if (!p->decision.has_value()) {
            p->decision = false;  // presume deadlock; abort
            ++timeouts_;
            if (obs::MetricsRegistry* metrics = process_->metrics();
                metrics != nullptr) {
              metrics->GetCounter("txn.decision_timeouts")->Increment();
            }
            PublishTxnEvent(process_, obs::EventKind::kTxnDecision, txn, 0,
                            txn.ToString() + " deadlock-timeout");
            p->decided.Notify();
          }
        });
    co_await p->decided.Wait();
    process_->host()->executor().Cancel(timer);
  }
  marshal::Writer w;
  w.WriteBool(*p->decision);
  co_return w.Take();
}

// ---------------------------------------------------------------------
// TransactionalServer

TransactionalServer::TransactionalServer(core::RpcProcess* process,
                                         const std::string& module_name)
    : process_(process),
      store_(std::make_unique<TxnStore>(process->host())) {
  module_ = process_->ExportModule(module_name);
  process_->ExportProcedure(
      module_, kFinishTransaction,
      [this](ServerCallContext& ctx,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        co_return co_await HandleFinish(ctx, args);
      });
  process_->ExportProcedure(
      module_, kAbortTransaction,
      [this](ServerCallContext&,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        marshal::Reader r(args);
        const TxnId txn = TxnId::Read(r);
        if (!r.AtEnd()) {
          co_return Status(ErrorCode::kProtocolError, "bad abort args");
        }
        store_->Abort(txn);
        co_return circus::Bytes{};
      });
  process_->SetStateProvider(module_,
                             [this] { return store_->ExternalizeState(); });
}

Task<StatusOr<circus::Bytes>> TransactionalServer::HandleFinish(
    ServerCallContext& /*ctx*/, const circus::Bytes& args) {
  marshal::Reader r(args);
  const TxnId txn = TxnId::Read(r);
  const Troupe coordinator = binding::ReadTroupe(r);
  if (!r.AtEnd() || coordinator.members.empty()) {
    co_return Status(ErrorCode::kProtocolError, "bad finish args");
  }
  // Default vote: ready to commit unless one of the transaction's
  // operations failed here (deadlock / lock timeout poisoned it).
  const bool vote =
      vote_hook_ ? vote_hook_(txn) : !store_->Poisoned(txn);
  const bool decision = co_await FinishTransaction(
      process_, store_.get(), txn, coordinator, vote);
  marshal::Writer out;
  out.WriteBool(decision);
  co_return out.Take();
}

// ---------------------------------------------------------------------
// FinishTransaction

Task<bool> FinishTransaction(core::RpcProcess* process, TxnStore* store,
                             const TxnId& txn, const Troupe& coordinator,
                             bool vote) {
  PublishTxnEvent(process, obs::EventKind::kTxnVote, txn, vote ? 1 : 0,
                  txn.ToString());
  // Call ready_to_commit back at the client troupe. The roles of client
  // and server are reversed here (Section 5.3). Each server troupe
  // member makes this call-back on a thread of its own: votes are
  // per-member facts, not replicated computation.
  marshal::Writer w;
  txn.Write(w);
  w.WriteBool(vote);
  core::CallOptions opts;
  opts.as_unreplicated_client = true;
  StatusOr<circus::Bytes> reply = co_await process->Call(
      process->NewRootThread(), coordinator,
      coordinator.members.front().module, kReadyToCommit, w.Take(), opts);
  bool decision = false;
  if (reply.ok()) {
    marshal::Reader rr(*reply);
    decision = rr.ReadBool();
    if (!rr.ok()) {
      decision = false;
    }
  }
  if (decision) {
    Status commit = store->Commit(txn);
    if (!commit.ok()) {
      CIRCUS_LOG(LogLevel::kWarning)
          << "commit of " << txn.ToString()
          << " failed locally: " << commit.ToString();
      decision = false;
    }
  }
  if (!decision) {
    store->Abort(txn);
  }
  co_return decision;
}

// ---------------------------------------------------------------------
// RunTransaction

Task<Status> RunTransaction(core::RpcProcess* process,
                            CommitCoordinator* coordinator,
                            core::ThreadId thread, const Troupe& server,
                            core::ModuleNumber server_module,
                            const TransactionBody& body,
                            const RunTransactionOptions& options) {
  Status last(ErrorCode::kAborted, "transaction never attempted");
  obs::MetricsRegistry* metrics = process->metrics();
  obs::Histogram* commit_ms_metric =
      metrics != nullptr ? metrics->GetHistogram("txn.commit_ms") : nullptr;
  obs::Counter* restarts_metric =
      metrics != nullptr ? metrics->GetCounter("txn.deadlock_restarts")
                         : nullptr;
  obs::Counter* aborts_metric =
      metrics != nullptr ? metrics->GetCounter("txn.aborts") : nullptr;
  const sim::TimePoint txn_start = process->host()->executor().now();
  for (int attempt = 0; attempt < options.max_attempts; ++attempt) {
    const TxnId txn{thread, coordinator->NextTxnNum(thread)};
    coordinator->Begin(txn, static_cast<int>(server.members.size()),
                       options.decision_timeout);
    Status body_status = co_await body(txn);
    if (!body_status.ok()) {
      // Abort at the servers, then decide whether to retry.
      marshal::Writer w;
      txn.Write(w);
      co_await process->Call(thread, server, server_module,
                             kAbortTransaction, w.Take());
      last = body_status;
      if (body_status.code() != ErrorCode::kDeadlock &&
          body_status.code() != ErrorCode::kAborted) {
        if (aborts_metric != nullptr) {
          aborts_metric->Increment();
        }
        PublishTxnEvent(process, obs::EventKind::kTxnResolved, txn, 0,
                        body_status.ToString());
        co_return body_status;  // a real error; do not retry
      }
    } else {
      // Drive the troupe commit protocol.
      marshal::Writer w;
      txn.Write(w);
      Troupe coordinator_troupe;
      if (options.coordinator_troupe.has_value()) {
        coordinator_troupe = *options.coordinator_troupe;
      } else {
        coordinator_troupe.members.push_back(coordinator->address());
      }
      binding::WriteTroupe(w, coordinator_troupe);
      StatusOr<circus::Bytes> r = co_await process->Call(
          thread, server, server_module, kFinishTransaction, w.Take());
      if (r.ok()) {
        marshal::Reader rr(*r);
        const bool committed = rr.ReadBool();
        if (rr.ok() && committed) {
          if (commit_ms_metric != nullptr) {
            commit_ms_metric->Observe(
                static_cast<double>(
                    (process->host()->executor().now() - txn_start)
                        .nanos()) /
                1e6);
          }
          PublishTxnEvent(process, obs::EventKind::kTxnResolved, txn, 1,
                          txn.ToString());
          co_return Status::Ok();
        }
        last = Status(ErrorCode::kAborted,
                      "troupe commit protocol aborted " + txn.ToString());
      } else {
        last = r.status();
        if (last.code() != ErrorCode::kDeadlock &&
            last.code() != ErrorCode::kAborted &&
            last.code() != ErrorCode::kDisagreement) {
          if (aborts_metric != nullptr) {
            aborts_metric->Increment();
          }
          PublishTxnEvent(process, obs::EventKind::kTxnResolved, txn, 0,
                          last.ToString());
          co_return last;
        }
      }
    }
    if (restarts_metric != nullptr) {
      restarts_metric->Increment();
    }
    PublishTxnEvent(process, obs::EventKind::kTxnRetry, txn,
                    static_cast<uint64_t>(attempt) + 1, last.ToString());
    // Binary exponential back-off before retrying (Section 5.3.1).
    Duration delay = options.backoff_base * (1LL << std::min(attempt, 10));
    if (options.rng != nullptr) {
      delay = Duration::Nanos(static_cast<int64_t>(
          delay.nanos() * (0.5 + options.rng->UniformDouble())));
    }
    co_await process->host()->SleepFor(delay);
  }
  if (aborts_metric != nullptr) {
    aborts_metric->Increment();
  }
  PublishTxnEvent(process, obs::EventKind::kTxnResolved,
                  TxnId{thread, 0}, 0, "attempts exhausted");
  co_return last;
}

}  // namespace circus::txn
