// Transaction identifiers. A transaction is named by the logical thread
// that runs it plus a per-thread counter, so deterministic client troupe
// members assign identical IDs to the same logical transaction — the
// property the troupe commit protocol relies on to correlate
// ready_to_commit call-backs (Section 5.3).
#ifndef SRC_TXN_TYPES_H_
#define SRC_TXN_TYPES_H_

#include <compare>
#include <cstdint>
#include <string>

#include "src/core/types.h"
#include "src/marshal/marshal.h"

namespace circus::txn {

struct TxnId {
  core::ThreadId thread;
  uint32_t num = 0;

  constexpr auto operator<=>(const TxnId&) const = default;
  std::string ToString() const;

  void Write(marshal::Writer& w) const {
    w.WriteU32(thread.machine);
    w.WriteU16(thread.port);
    w.WriteU16(thread.local);
    w.WriteU32(num);
  }
  static TxnId Read(marshal::Reader& r) {
    TxnId id;
    id.thread.machine = r.ReadU32();
    id.thread.port = r.ReadU16();
    id.thread.local = r.ReadU16();
    id.num = r.ReadU32();
    return id;
  }
};

}  // namespace circus::txn

#endif  // SRC_TXN_TYPES_H_
