// The ordered broadcast protocol (Section 5.4, Figure 5.1): guarantees
// that all members of a troupe accept broadcast messages for
// application-level processing in the same order, without any
// communication among the members. Two phases, both replicated calls:
//
//   1. get_proposed_time(message): each member inserts the message into
//      its queue with a proposed time from its (synchronized) clock;
//   2. accept_time(message, max of proposals): each member re-queues the
//      message at the accepted time and delivers the prefix of accepted,
//      due messages.
//
// The client gathers the proposals with an application-specific collator
// (the maximum), a textbook use of explicit replication (Section 7.4).
//
// Combining ordered broadcast with a deterministic local concurrency
// control algorithm (here: serial execution in acceptance order) gives
// the starvation-free alternative to the troupe commit protocol.
#ifndef SRC_TXN_ORDERED_BROADCAST_H_
#define SRC_TXN_ORDERED_BROADCAST_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/core/process.h"
#include "src/sim/channel.h"

namespace circus::txn {

enum BroadcastProcedure : core::ProcedureNumber {
  kGetProposedTime = 0,  // (msg id, payload) -> proposed time (i64 ns)
  kAcceptTime = 1,       // (msg id, accepted time) -> ()
};

// Server half: install on each troupe member; consume Delivered() in
// order.
class OrderedBroadcastServer {
 public:
  OrderedBroadcastServer(core::RpcProcess* process,
                         const std::string& module_name);
  ~OrderedBroadcastServer() { *alive_ = false; }

  core::ModuleNumber module_number() const { return module_; }

  // Next message accepted for application-level processing; identical
  // order at every member.
  sim::Task<circus::Bytes> NextDelivered() {
    co_return co_await ReceiveValue(*delivered_);
  }
  size_t pending() const { return queue_.size(); }
  uint64_t delivered_count() const { return delivered_count_; }

 private:
  enum class EntryStatus { kProposed, kAccepted };
  struct QueueKey {
    int64_t time;
    uint64_t msg_id;  // tie-break so every member orders identically
    auto operator<=>(const QueueKey&) const = default;
  };
  struct Entry {
    circus::Bytes payload;
    EntryStatus status;
  };

  void DrainDeliverable();

  core::RpcProcess* process_;
  core::ModuleNumber module_;
  std::map<QueueKey, Entry> queue_;
  std::map<uint64_t, QueueKey> by_id_;
  std::unique_ptr<sim::Channel<circus::Bytes>> delivered_;
  uint64_t delivered_count_ = 0;
  // Guards scheduled re-drain callbacks against outliving the server.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
};

// Client half: the atomic_broadcast procedure of Figure 5.1. `msg_id`
// must be unique per message and identical across replicated client
// members (derive it from the thread and a counter).
sim::Task<circus::Status> AtomicBroadcast(core::RpcProcess* process,
                                          core::ThreadId thread,
                                          const core::Troupe& troupe,
                                          core::ModuleNumber module,
                                          uint64_t msg_id,
                                          circus::Bytes payload);

}  // namespace circus::txn

#endif  // SRC_TXN_ORDERED_BROADCAST_H_
