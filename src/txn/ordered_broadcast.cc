#include "src/txn/ordered_broadcast.h"

#include <utility>

#include "src/marshal/marshal.h"
#include "src/obs/bus.h"

namespace circus::txn {

using circus::Status;
using circus::StatusOr;
using core::ServerCallContext;
using sim::Task;

namespace {

// Publishes an ordered-broadcast event (a = message id, b = logical
// time). `thread` is the replicated call's thread when the event happens
// inside a handler, or zero for local delivery from the queue.
void PublishBroadcastEvent(core::RpcProcess* process, obs::EventKind kind,
                           const core::ThreadId& thread, uint64_t msg_id,
                           int64_t logical_time) {
  obs::EventBus* bus = process->event_bus();
  if (bus == nullptr || !bus->active()) {
    return;
  }
  obs::Event e;
  e.kind = kind;
  e.host = static_cast<uint32_t>(process->host()->id());
  const net::NetAddress self = process->process_address();
  e.origin = obs::PackAddress(self.host, self.port);
  e.thread = obs::ThreadRef{thread.machine, thread.port, thread.local};
  e.a = msg_id;
  e.b = static_cast<uint64_t>(logical_time);
  bus->Publish(std::move(e));
}

}  // namespace

OrderedBroadcastServer::OrderedBroadcastServer(
    core::RpcProcess* process, const std::string& module_name)
    : process_(process),
      delivered_(std::make_unique<sim::Channel<circus::Bytes>>(
          process->host())) {
  module_ = process_->ExportModule(module_name);
  process_->ExportProcedure(
      module_, kGetProposedTime,
      [this](ServerCallContext& ctx,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        marshal::Reader r(args);
        const uint64_t msg_id = r.ReadU64();
        circus::Bytes payload = r.ReadBytes();
        if (!r.AtEnd()) {
          co_return Status(ErrorCode::kProtocolError, "bad propose args");
        }
        // time := now() from this machine's (approximately synchronized)
        // clock; insert as proposed.
        const int64_t now = process_->host()->LocalClockNanos();
        const QueueKey key{now, msg_id};
        if (!by_id_.contains(msg_id)) {
          by_id_[msg_id] = key;
          queue_[key] = Entry{std::move(payload), EntryStatus::kProposed};
        }
        PublishBroadcastEvent(process_, obs::EventKind::kBroadcastPropose,
                              ctx.thread, msg_id, by_id_[msg_id].time);
        marshal::Writer w;
        w.WriteI64(by_id_[msg_id].time);
        co_return w.Take();
      });
  process_->ExportProcedure(
      module_, kAcceptTime,
      [this](ServerCallContext& ctx,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        marshal::Reader r(args);
        const uint64_t msg_id = r.ReadU64();
        const int64_t accepted_time = r.ReadI64();
        if (!r.AtEnd()) {
          co_return Status(ErrorCode::kProtocolError, "bad accept args");
        }
        PublishBroadcastEvent(process_, obs::EventKind::kBroadcastAccept,
                              ctx.thread, msg_id, accepted_time);
        auto it = by_id_.find(msg_id);
        if (it == by_id_.end()) {
          co_return Status(ErrorCode::kNotFound, "unknown broadcast");
        }
        // Re-queue at the accepted time with accepted status.
        const QueueKey old_key = it->second;
        auto entry_it = queue_.find(old_key);
        if (entry_it != queue_.end() &&
            entry_it->second.status == EntryStatus::kProposed) {
          Entry entry = std::move(entry_it->second);
          entry.status = EntryStatus::kAccepted;
          queue_.erase(entry_it);
          const QueueKey new_key{accepted_time, msg_id};
          by_id_[msg_id] = new_key;
          queue_[new_key] = std::move(entry);
        }
        DrainDeliverable();
        co_return circus::Bytes{};
      });
}

void OrderedBroadcastServer::DrainDeliverable() {
  // Accept the head for application-level processing while it is
  // accepted and due; stop at the first proposed (not yet accepted)
  // message or one whose time is still in the future (Figure 5.1).
  const int64_t now = process_->host()->LocalClockNanos();
  while (!queue_.empty()) {
    auto head = queue_.begin();
    if (head->second.status == EntryStatus::kProposed) {
      break;
    }
    if (head->first.time > now) {
      // Due in the future of the local clock: re-check when its
      // acceptance time arrives (converted to simulation time).
      std::shared_ptr<bool> alive = alive_;
      process_->host()->executor().ScheduleAt(
          process_->host()->SimTimeForLocal(head->first.time),
          [this, alive] {
            if (*alive) {
              DrainDeliverable();
            }
          });
      break;
    }
    by_id_.erase(head->first.msg_id);
    ++delivered_count_;
    PublishBroadcastEvent(process_, obs::EventKind::kBroadcastDeliver,
                          core::ThreadId{}, head->first.msg_id,
                          head->first.time);
    delivered_->Send(std::move(head->second.payload));
    queue_.erase(head);
  }
}

Task<Status> AtomicBroadcast(core::RpcProcess* process,
                             core::ThreadId thread,
                             const core::Troupe& troupe,
                             core::ModuleNumber module, uint64_t msg_id,
                             circus::Bytes payload) {
  // Phase 1: gather proposed times from every member; the collator is
  // the max function over all replies (explicit replication).
  marshal::Writer w;
  w.WriteU64(msg_id);
  w.WriteBytes(payload);
  core::CallOptions opts;
  opts.custom_collator =
      [](core::ReplyStream& stream) -> Task<StatusOr<circus::Bytes>> {
    int64_t max_time = INT64_MIN;
    int heard = 0;
    while (true) {
      std::optional<core::Reply> r = co_await stream.Next();
      if (!r.has_value()) {
        break;
      }
      if (!r->result.ok()) {
        continue;  // crashed member; the survivors order the message
      }
      marshal::Reader reader(*r->result);
      const int64_t t = reader.ReadI64();
      if (reader.AtEnd()) {
        max_time = std::max(max_time, t);
        ++heard;
      }
    }
    if (heard == 0) {
      co_return Status(ErrorCode::kUnavailable,
                       "no proposals from the troupe");
    }
    marshal::Writer out;
    out.WriteI64(max_time);
    co_return out.Take();
  };
  StatusOr<circus::Bytes> proposals = co_await process->Call(
      thread, troupe, module, kGetProposedTime, w.Take(), opts);
  if (!proposals.ok()) {
    co_return proposals.status();
  }
  marshal::Reader r(*proposals);
  const int64_t max_time = r.ReadI64();

  // Phase 2: tell every member the accepted time.
  marshal::Writer w2;
  w2.WriteU64(msg_id);
  w2.WriteI64(max_time);
  StatusOr<circus::Bytes> accept =
      co_await process->Call(thread, troupe, module, kAcceptTime,
                             w2.Take());
  co_return accept.status();
}

}  // namespace circus::txn
