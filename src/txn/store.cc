#include "src/txn/store.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "src/common/check.h"
#include "src/marshal/marshal.h"

namespace circus::txn {

using circus::Status;
using circus::StatusOr;
using sim::Task;

std::string TxnId::ToString() const {
  return thread.ToString() + "/txn" + std::to_string(num);
}

void TxnStore::Begin(const TxnId& txn) {
  txns_.try_emplace(txn);
}

void TxnStore::BeginNested(const TxnId& child, const TxnId& parent) {
  CIRCUS_CHECK_MSG(txns_.contains(parent), "parent transaction not active");
  auto [it, inserted] = txns_.try_emplace(child);
  if (inserted) {
    it->second.parent = parent;
    txns_[parent].children.insert(child);
  }
}

bool TxnStore::IsSameOrAncestor(const TxnId& ancestor,
                                const TxnId& txn) const {
  TxnId cur = txn;
  while (true) {
    if (cur == ancestor) {
      return true;
    }
    auto it = txns_.find(cur);
    if (it == txns_.end() || !it->second.parent.has_value()) {
      return false;
    }
    cur = *it->second.parent;
  }
}

std::optional<circus::Bytes> TxnStore::Lookup(const TxnId& txn,
                                              const std::string& key) const {
  // Tentative updates of a transaction are visible to its descendants
  // (Section 2.3.2): walk the chain from the transaction to the root.
  TxnId cur = txn;
  while (true) {
    auto it = txns_.find(cur);
    if (it == txns_.end()) {
      break;
    }
    auto w = it->second.workspace.find(key);
    if (w != it->second.workspace.end()) {
      return w->second;
    }
    if (!it->second.parent.has_value()) {
      break;
    }
    cur = *it->second.parent;
  }
  auto b = base_.find(key);
  if (b == base_.end()) {
    return std::nullopt;
  }
  return b->second;
}

bool TxnStore::LockGrantable(const Lock& lock, const TxnId& txn,
                             LockMode mode) const {
  if (mode == LockMode::kRead) {
    return !lock.writer.has_value() || IsSameOrAncestor(*lock.writer, txn) ||
           *lock.writer == txn;
  }
  if (lock.writer.has_value() && *lock.writer != txn &&
      !IsSameOrAncestor(*lock.writer, txn)) {
    return false;
  }
  for (const TxnId& reader : lock.readers) {
    if (reader != txn && !IsSameOrAncestor(reader, txn)) {
      return false;
    }
  }
  return true;
}

bool TxnStore::WouldDeadlock(const TxnId& waiter, const Lock& lock) const {
  // DFS over the waits-for graph (Section 2.3.1): if waiting on this
  // lock's foreign holders would close a cycle back to the waiter's
  // transaction family, the wait must not begin. Lock holders in the
  // waiter's own family (itself, ancestors, descendants) are not
  // conflict edges — nested transactions share their ancestors' locks.
  auto in_family = [&](const TxnId& t) {
    return t == waiter || IsSameOrAncestor(t, waiter) ||
           IsSameOrAncestor(waiter, t);
  };
  auto holders = [](const Lock& l) {
    std::vector<TxnId> out(l.readers.begin(), l.readers.end());
    if (l.writer.has_value()) {
      out.push_back(*l.writer);
    }
    return out;
  };
  std::vector<TxnId> stack;
  for (const TxnId& h : holders(lock)) {
    if (!in_family(h)) {
      stack.push_back(h);
    }
  }
  std::set<TxnId> visited;
  while (!stack.empty()) {
    TxnId t = stack.back();
    stack.pop_back();
    if (!visited.insert(t).second) {
      continue;
    }
    auto w = waiting_on_.find(t);
    if (w == waiting_on_.end()) {
      continue;
    }
    auto l = locks_.find(w->second);
    if (l == locks_.end()) {
      continue;
    }
    for (const TxnId& h : holders(l->second)) {
      if (in_family(h)) {
        return true;  // the chain comes back to us: a cycle
      }
      stack.push_back(h);
    }
  }
  return false;
}

Task<Status> TxnStore::Acquire(const TxnId& txn, const std::string& key,
                               LockMode mode) {
  if (!txns_.contains(txn)) {
    co_return Status(ErrorCode::kFailedPrecondition,
                     "transaction not active: " + txn.ToString());
  }
  while (true) {
    Lock& lock = locks_[key];
    if (LockGrantable(lock, txn, mode)) {
      if (mode == LockMode::kRead) {
        if (!(lock.writer.has_value() && *lock.writer == txn)) {
          lock.readers.insert(txn);
        }
      } else {
        lock.readers.erase(txn);  // upgrade
        lock.writer = txn;
      }
      txns_[txn].locks_held.insert(key);
      co_return Status::Ok();
    }
    if (WouldDeadlock(txn, lock)) {
      ++deadlock_aborts_;
      poisoned_.insert(txn);
      co_return Status(ErrorCode::kDeadlock,
                       "deadlock acquiring " + key + " for " +
                           txn.ToString());
    }
    auto wake = std::make_shared<sim::Channel<bool>>(host_);
    lock.queue.push_back(Lock::Waiter{txn, mode, wake});
    waiting_on_[txn] = key;
    std::optional<bool> granted =
        co_await wake->ReceiveWithTimeout(lock_timeout_);
    waiting_on_.erase(txn);
    if (!granted.has_value()) {
      // Lock wait expired: presume a deadlock spanning troupe members.
      ++lock_timeouts_;
      poisoned_.insert(txn);
      auto lk = locks_.find(key);
      if (lk != locks_.end()) {
        std::erase_if(lk->second.queue, [&](const Lock::Waiter& w) {
          return w.wake == wake;
        });
      }
      co_return Status(ErrorCode::kDeadlock,
                       "lock wait timed out on " + key + " for " +
                           txn.ToString());
    }
    if (!*granted) {
      co_return Status(ErrorCode::kAborted,
                       "transaction aborted while waiting for " + key);
    }
    // Re-check grantability; another transaction may have slipped in.
  }
}

void TxnStore::GrantWaiters(const std::string& key) {
  auto it = locks_.find(key);
  if (it == locks_.end()) {
    return;
  }
  Lock& lock = it->second;
  while (!lock.queue.empty()) {
    const Lock::Waiter& w = lock.queue.front();
    if (!txns_.contains(w.txn)) {
      lock.queue.pop_front();  // waiter's transaction is gone
      continue;
    }
    if (!LockGrantable(lock, w.txn, w.mode)) {
      break;
    }
    // Wake it; it will re-run the grant logic itself.
    w.wake->Send(true);
    lock.queue.pop_front();
  }
  if (lock.queue.empty() && lock.readers.empty() &&
      !lock.writer.has_value()) {
    locks_.erase(it);
  }
}

void TxnStore::ReleaseLocks(const TxnId& txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return;
  }
  std::set<std::string> keys = std::move(it->second.locks_held);
  it->second.locks_held.clear();
  for (const std::string& key : keys) {
    auto l = locks_.find(key);
    if (l == locks_.end()) {
      continue;
    }
    l->second.readers.erase(txn);
    if (l->second.writer.has_value() && *l->second.writer == txn) {
      l->second.writer.reset();
    }
    GrantWaiters(key);
  }
}

Status TxnStore::Commit(const TxnId& txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return Status(ErrorCode::kFailedPrecondition,
                  "transaction not active: " + txn.ToString());
  }
  // Uncommitted subtransactions abort when the parent finishes.
  std::set<TxnId> children = it->second.children;
  for (const TxnId& child : children) {
    Abort(child);
  }
  it = txns_.find(txn);
  CIRCUS_CHECK(it != txns_.end());
  Transaction txn_state = std::move(it->second);
  if (txn_state.parent.has_value()) {
    // Nested commit: updates become visible to the parent; locks are
    // inherited by the parent (anti-inheritance on abort).
    Transaction& parent = txns_[*txn_state.parent];
    for (auto& [key, value] : txn_state.workspace) {
      parent.workspace[key] = std::move(value);
    }
    for (const std::string& key : txn_state.locks_held) {
      auto l = locks_.find(key);
      if (l != locks_.end()) {
        if (l->second.writer.has_value() && *l->second.writer == txn) {
          l->second.writer = *txn_state.parent;
        }
        if (l->second.readers.erase(txn) > 0) {
          l->second.readers.insert(*txn_state.parent);
        }
      }
      parent.locks_held.insert(key);
    }
    parent.children.erase(txn);
    txns_.erase(txn);
    return Status::Ok();
  }
  // Top-level commit: tentative updates become permanent.
  for (auto& [key, value] : txn_state.workspace) {
    if (value.has_value()) {
      base_[key] = std::move(*value);
    } else {
      base_.erase(key);
    }
  }
  txns_.erase(txn);
  poisoned_.erase(txn);
  // Locks were recorded in txn_state; release them now.
  for (const std::string& key : txn_state.locks_held) {
    auto l = locks_.find(key);
    if (l == locks_.end()) {
      continue;
    }
    l->second.readers.erase(txn);
    if (l->second.writer.has_value() && *l->second.writer == txn) {
      l->second.writer.reset();
    }
    GrantWaiters(key);
  }
  return Status::Ok();
}

void TxnStore::Abort(const TxnId& txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    return;
  }
  std::set<TxnId> children = it->second.children;
  for (const TxnId& child : children) {
    Abort(child);
  }
  it = txns_.find(txn);
  CIRCUS_CHECK(it != txns_.end());
  Transaction txn_state = std::move(it->second);
  if (txn_state.parent.has_value()) {
    txns_[*txn_state.parent].children.erase(txn);
  }
  txns_.erase(txn);
  poisoned_.erase(txn);
  // Wake any pending lock waits of this transaction with "aborted".
  for (auto& [key, lock] : locks_) {
    for (auto& waiter : lock.queue) {
      if (waiter.txn == txn) {
        waiter.wake->Send(false);
      }
    }
  }
  for (const std::string& key : txn_state.locks_held) {
    auto l = locks_.find(key);
    if (l == locks_.end()) {
      continue;
    }
    l->second.readers.erase(txn);
    if (l->second.writer.has_value() && *l->second.writer == txn) {
      l->second.writer.reset();
    }
    GrantWaiters(key);
  }
}

Task<StatusOr<circus::Bytes>> TxnStore::Get(const TxnId& txn,
                                            const std::string& key) {
  Status s = co_await Acquire(txn, key, LockMode::kRead);
  if (!s.ok()) {
    co_return s;
  }
  std::optional<circus::Bytes> v = Lookup(txn, key);
  if (!v.has_value()) {
    co_return Status(ErrorCode::kNotFound, "no such object: " + key);
  }
  co_return *v;
}

Task<StatusOr<bool>> TxnStore::Exists(const TxnId& txn,
                                      const std::string& key) {
  Status s = co_await Acquire(txn, key, LockMode::kRead);
  if (!s.ok()) {
    co_return s;
  }
  co_return Lookup(txn, key).has_value();
}

Task<Status> TxnStore::Put(const TxnId& txn, const std::string& key,
                           circus::Bytes value) {
  Status s = co_await Acquire(txn, key, LockMode::kWrite);
  if (!s.ok()) {
    co_return s;
  }
  txns_[txn].workspace[key] = std::move(value);
  co_return Status::Ok();
}

std::optional<circus::Bytes> TxnStore::Peek(const std::string& key) const {
  auto it = base_.find(key);
  if (it == base_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void TxnStore::Poke(const std::string& key, circus::Bytes value) {
  base_[key] = std::move(value);
}

circus::Bytes TxnStore::ExternalizeState() const {
  marshal::Writer w;
  w.WriteU32(static_cast<uint32_t>(base_.size()));
  for (const auto& [key, value] : base_) {
    w.WriteString(key);
    w.WriteBytes(value);
  }
  return w.Take();
}

void TxnStore::InternalizeState(const circus::Bytes& raw) {
  marshal::Reader r(raw);
  const uint32_t count = r.ReadU32();
  std::map<std::string, circus::Bytes> fresh;
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    std::string key = r.ReadString();
    fresh[key] = r.ReadBytes();
  }
  CIRCUS_CHECK_MSG(r.ok(), "corrupt externalized state");
  base_ = std::move(fresh);
}

}  // namespace circus::txn
