// Lightweight transactions (Section 5.2): atomic, serializable
// transactions over a volatile in-memory object store. Because troupes
// mask partial failures, no stable storage, intention lists, or crash
// recovery machinery is needed — a total failure loses the store, which
// is exactly the paper's trade (replication replaces stable storage,
// Section 3.5.1).
//
// Concurrency control is strict two-phase locking with read/write locks,
// lock upgrade, and local waits-for deadlock detection (a cycle aborts
// the requester with kDeadlock). Transactions may be nested
// (Section 2.3.2): a subtransaction's tentative updates merge into its
// parent on commit and vanish on abort; locks acquired by the child pass
// to the parent on commit (Moss-style inheritance).
#ifndef SRC_TXN_STORE_H_
#define SRC_TXN_STORE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/sim/channel.h"
#include "src/sim/host.h"
#include "src/sim/task.h"
#include "src/txn/types.h"

namespace circus::txn {

class TxnStore {
 public:
  explicit TxnStore(sim::Host* host) : host_(host) {}
  TxnStore(const TxnStore&) = delete;
  TxnStore& operator=(const TxnStore&) = delete;

  sim::Host* host() const { return host_; }

  // --- transaction lifecycle ---
  // Begins a top-level transaction. Idempotent.
  void Begin(const TxnId& txn);
  // Begins `child` as a nested transaction of `parent`.
  void BeginNested(const TxnId& child, const TxnId& parent);
  bool Active(const TxnId& txn) const { return txns_.contains(txn); }

  // Applies the transaction's tentative updates. For a nested
  // transaction the updates and locks move to the parent; for a
  // top-level transaction they become permanent and the locks release.
  circus::Status Commit(const TxnId& txn);
  // Discards tentative updates (and aborts any active subtransactions).
  void Abort(const TxnId& txn);

  // --- operations (acquire locks; may wait; kDeadlock on a cycle) ---
  sim::Task<circus::StatusOr<circus::Bytes>> Get(const TxnId& txn,
                                                 const std::string& key);
  sim::Task<circus::Status> Put(const TxnId& txn, const std::string& key,
                                circus::Bytes value);
  // True if the key exists (in the transaction's view). Read-locks.
  sim::Task<circus::StatusOr<bool>> Exists(const TxnId& txn,
                                           const std::string& key);

  // --- non-transactional access (state transfer, tests) ---
  std::optional<circus::Bytes> Peek(const std::string& key) const;
  void Poke(const std::string& key, circus::Bytes value);
  circus::Bytes ExternalizeState() const;  // Section 6.4.1 get_state
  void InternalizeState(const circus::Bytes& raw);
  size_t size() const { return base_.size(); }

  // Number of transactions aborted by deadlock detection.
  uint64_t deadlock_aborts() const { return deadlock_aborts_; }
  // Lock waits that expired (distributed deadlock presumed).
  uint64_t lock_timeouts() const { return lock_timeouts_; }
  size_t active_transactions() const { return txns_.size(); }

  // A transaction is poisoned once any of its operations failed (lock
  // timeout or deadlock); a troupe member must vote abort for it in the
  // commit protocol.
  bool Poisoned(const TxnId& txn) const { return poisoned_.contains(txn); }

  // Local waits-for cycles are detected instantly; cycles spanning
  // several troupe members are invisible locally and are broken by this
  // lock-wait timeout instead (the distributed-deadlock half of
  // Section 5.3's "transform divergent orders into deadlocks, then
  // detect and retry").
  void set_lock_timeout(sim::Duration d) { lock_timeout_ = d; }

 private:
  enum class LockMode { kRead, kWrite };

  struct Lock {
    std::set<TxnId> readers;
    std::optional<TxnId> writer;
    struct Waiter {
      TxnId txn;
      LockMode mode;
      std::shared_ptr<sim::Channel<bool>> wake;  // true = granted
    };
    std::deque<Waiter> queue;
  };

  struct Transaction {
    std::optional<TxnId> parent;
    std::set<TxnId> children;
    std::map<std::string, std::optional<circus::Bytes>> workspace;
    std::set<std::string> locks_held;  // keys this txn (itself) locked
  };

  // The value of `key` as seen by `txn` (workspace chain, then base).
  std::optional<circus::Bytes> Lookup(const TxnId& txn,
                                      const std::string& key) const;
  sim::Task<circus::Status> Acquire(const TxnId& txn,
                                    const std::string& key, LockMode mode);
  bool LockGrantable(const Lock& lock, const TxnId& txn,
                     LockMode mode) const;
  // Would `waiter` waiting on the current holders of `lock` close a
  // cycle in the waits-for graph?
  bool WouldDeadlock(const TxnId& waiter, const Lock& lock) const;
  void ReleaseLocks(const TxnId& txn);
  void GrantWaiters(const std::string& key);
  // Is `ancestor` equal to or an ancestor of `txn`?
  bool IsSameOrAncestor(const TxnId& ancestor, const TxnId& txn) const;

  sim::Host* host_;
  std::map<std::string, circus::Bytes> base_;
  std::map<TxnId, Transaction> txns_;
  std::map<std::string, Lock> locks_;
  // waits_for_[t] = the lock key t is currently blocked on.
  std::map<TxnId, std::string> waiting_on_;
  std::set<TxnId> poisoned_;
  sim::Duration lock_timeout_ = sim::Duration::Seconds(1);
  uint64_t deadlock_aborts_ = 0;
  uint64_t lock_timeouts_ = 0;
};

}  // namespace circus::txn

#endif  // SRC_TXN_STORE_H_
