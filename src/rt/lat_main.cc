// circus_lat: stage-level latency attribution over merged trace shards.
//
//   circus_lat [-k slowest] [-p] shard...
//
// Reads the per-node shards a testbed wrote (circus_node trace_dir=),
// clock-aligns them exactly like circus_trace_merge, replays the merged
// event stream through the obs::LatencyAttributor, and renders:
//
//   * the per-stage breakdown table (count, p50/p90/p99/max per stage,
//     and each stage's share of total end-to-end time);
//   * the top-K slow-call report, each offending call with its full
//     cross-member span tree.
//
// With -p the Prometheus exposition is printed instead of the table
// (same text a live node serves for the `latency` query). Exit codes:
// 0 report written, 2 usage/input error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/latency.h"
#include "src/obs/merge.h"
#include "src/obs/shard.h"

namespace circus::rt {
namespace {

int Usage() {
  std::fprintf(stderr, "usage: circus_lat [-k slowest] [-p] shard...\n");
  return 2;
}

int Main(int argc, char** argv) {
  size_t top_k = 5;
  bool prometheus = false;
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-k") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "circus_lat: -k needs a count\n");
        return 2;
      }
      top_k = static_cast<size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (std::strcmp(argv[i], "-p") == 0) {
      prometheus = true;
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      return Usage();
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "circus_lat: unknown flag %s\n", argv[i]);
      return Usage();
    } else {
      shard_paths.push_back(argv[i]);
    }
  }
  if (shard_paths.empty()) {
    return Usage();
  }

  std::vector<obs::ShardFile> shards;
  for (const std::string& path : shard_paths) {
    circus::StatusOr<obs::ShardFile> shard = obs::ReadShardFile(path);
    if (!shard.ok()) {
      std::fprintf(stderr, "circus_lat: %s\n",
                   shard.status().ToString().c_str());
      return 2;
    }
    shards.push_back(*std::move(shard));
  }

  circus::StatusOr<obs::MergeResult> merged = obs::MergeShards(shards);
  if (!merged.ok()) {
    std::fprintf(stderr, "circus_lat: %s\n",
                 merged.status().ToString().c_str());
    return 2;
  }

  obs::LatencyAttributor::Options options;
  options.max_exemplars = top_k;
  obs::LatencyAttributor attributor(options);
  for (const obs::Event& event : merged->events) {
    attributor.Observe(event);
  }

  if (attributor.calls() == 0) {
    std::fprintf(stderr,
                 "circus_lat: no completed calls in %zu shard(s) "
                 "(%zu events)\n",
                 shards.size(), merged->events.size());
  }
  if (prometheus) {
    std::fputs(attributor.ToPrometheus().c_str(), stdout);
    return 0;
  }
  std::printf("%zu shard(s), %zu events\n", shards.size(),
              merged->events.size());
  std::fputs(attributor.ToString().c_str(), stdout);
  if (top_k > 0 && attributor.calls() > 0) {
    std::fputs(attributor.SlowCallReport().c_str(), stdout);
  }
  return 0;
}

}  // namespace
}  // namespace circus::rt

int main(int argc, char** argv) { return circus::rt::Main(argc, argv); }
