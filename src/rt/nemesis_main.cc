// circus_nemesis: a live fault-injection supervisor for a real loopback
// testbed. It spawns circus_node processes (one ringmaster, M members,
// one resilient client), generates the seeded chaos schedule
// (src/chaos/schedule.h) that the simulator's chaos harness uses, and
// executes it against the *real* processes:
//
//   kCrashMember   SIGKILL a member, restart it 3 s later under a new
//                  node_name (fresh trace shard + capture, same listen
//                  port — the clock-seeded identifier rule is what
//                  keeps peers' duplicate suppression from eating the
//                  reborn process's calls);
//   kPartition     a bidirectional endpoint partition, installed on
//                  every node's fault control port (faults_port=);
//   kLossBurst     network-wide loss + duplication probabilities;
//   kLatencySpike  exponential extra delay (jitter_ms);
//   kClockSkew     skipped — a real testbed shares one kernel clock.
//
// After the schedule drains it heals everything, waits for the troupe
// to settle, then runs two oracles:
//
//   1. convergence — a fresh unanimous-collation client calls the
//      counter procedure; unanimous collation fails unless every
//      member (including any restarted one) returns identical state;
//   2. wire audit — every incarnation's packet capture, in spawn
//      order, replayed through the obs::wire Section 4.2 auditor.
//
// The availability line parsed from the resilient client
// (calls=/ok=/failed=) plus both oracle results go to a JSON summary
// (json=PATH) that scripts/check_chaos_rt.sh aggregates into
// BENCH_chaos_rt.json. Exit is nonzero on any audit violation, failed
// convergence, or a node death the schedule did not order.
//
// Usage (key=value arguments, all optional):
//   circus_nemesis seed=7 dir=/tmp/run bin=build/src/rt/circus_node \
//       members=3 horizon_s=25 actions=6 base_port=38400 json=out.json
#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cinttypes>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/chaos/schedule.h"
#include "src/msg/paired_endpoint.h"
#include "src/net/address.h"
#include "src/obs/wire.h"
#include "src/rt/node_config.h"
#include "src/sim/time.h"

namespace circus::rt {
namespace {

volatile std::sig_atomic_t g_stop = 0;
void HandleStop(int) { g_stop = 1; }

int64_t MonotonicNanos() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void SleepMillis(int ms) {
  timespec ts{};
  ts.tv_sec = ms / 1000;
  ts.tv_nsec = static_cast<long>(ms % 1000) * 1000000;
  nanosleep(&ts, nullptr);
}

// One request/one reply text datagram to 127.0.0.1:port — the shape of
// both the introspect (stats_port) and fault control (faults_port)
// protocols. Returns nullopt when every try times out (e.g. the node
// is SIGKILLed, or the burst loss plan ate the control packet — which
// is why control endpoints bind on the inner fabric, not the faulted
// one).
std::optional<std::string> UdpAsk(uint16_t port, const std::string& request,
                                  int tries, int timeout_ms) {
  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    return std::nullopt;
  }
  timeval tv{};
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  sockaddr_in to{};
  to.sin_family = AF_INET;
  to.sin_port = htons(port);
  to.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  std::optional<std::string> reply;
  for (int i = 0; i < tries && g_stop == 0; ++i) {
    if (sendto(fd, request.data(), request.size(), 0,
               reinterpret_cast<sockaddr*>(&to), sizeof(to)) < 0) {
      SleepMillis(50);
      continue;
    }
    char buf[2048];
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n >= 0) {
      reply = std::string(buf, static_cast<size_t>(n));
      break;
    }
  }
  close(fd);
  return reply;
}

// ---------------------------------------------------------- processes --

struct NodeProc {
  std::string base_name;  // "member-38402"; incarnations append ".rK"
  std::string role;       // config role string
  uint16_t port = 0;
  uint16_t stats_port = 0;
  uint16_t faults_port = 0;
  std::string extra;  // role-specific config lines
  pid_t pid = -1;
  int restarts = 0;
  bool expect_death = false;  // we SIGKILLed it; a restart is scheduled
  std::vector<std::string> captures;  // tap paths, in incarnation order
};

struct Testbed {
  std::string dir;
  std::string bin;
  uint64_t seed = 0;
  std::string workload = "echo";
  NodeProc ringmaster;
  std::vector<NodeProc> members;
  NodeProc client;
  std::vector<std::string> unexpected;  // deaths the schedule didn't order
};

std::string IncarnationName(const NodeProc& node) {
  if (node.restarts == 0) {
    return node.base_name;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), ".r%d", node.restarts);
  return node.base_name + buf;
}

std::string LogPath(const Testbed& bed, const NodeProc& node) {
  return bed.dir + "/" + IncarnationName(node) + ".log";
}

// Writes the incarnation's config file and returns its path. Every
// incarnation gets a distinct node_name so its trace shard and packet
// capture land in fresh files instead of clobbering the ones its
// SIGKILLed predecessor left behind (the audit wants both).
std::string WriteConfig(const Testbed& bed, const NodeProc& node,
                        uint64_t fault_seed) {
  const std::string name = IncarnationName(node);
  const std::string path = bed.dir + "/" + name + ".conf";
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "nemesis: cannot write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    std::exit(2);
  }
  std::fprintf(f, "role = %s\nlisten = 127.0.0.1:%u\nnode_name = %s\n",
               node.role.c_str(), node.port, name.c_str());
  std::fprintf(f, "trace_dir = %s\ntap_dir = %s\n", bed.dir.c_str(),
               bed.dir.c_str());
  if (node.stats_port != 0) {
    std::fprintf(f, "stats_port = %u\n", node.stats_port);
  }
  if (node.faults_port != 0) {
    std::fprintf(f, "faults_port = %u\nfault_seed = %" PRIu64 "\n",
                 node.faults_port, fault_seed);
  }
  std::fputs(node.extra.c_str(), f);
  std::fclose(f);
  return path;
}

pid_t SpawnProcess(const std::string& bin, const std::string& conf,
                   const std::string& log_path) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::fprintf(stderr, "nemesis: fork: %s\n", std::strerror(errno));
    std::exit(2);
  }
  if (pid == 0) {
    const int fd = open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd >= 0) {
      dup2(fd, 1);
      dup2(fd, 2);
      close(fd);
    }
    execl(bin.c_str(), bin.c_str(), conf.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

void SpawnNode(Testbed& bed, NodeProc& node) {
  // Per-node fault seeds stay a pure function of the schedule seed (so
  // a run is reproducible) but differ across nodes (so their fault
  // fabrics don't make lock-step decisions).
  const uint64_t fault_seed = bed.seed ^ (uint64_t{node.port} << 20);
  const std::string conf = WriteConfig(bed, node, fault_seed);
  node.pid = SpawnProcess(bed.bin, conf, LogPath(bed, node));
  node.expect_death = false;
  node.captures.push_back(bed.dir + "/" + IncarnationName(node) +
                          ".tap.jsonl");
}

std::vector<NodeProc*> AllNodes(Testbed& bed) {
  std::vector<NodeProc*> nodes;
  nodes.push_back(&bed.ringmaster);
  for (NodeProc& m : bed.members) {
    nodes.push_back(&m);
  }
  nodes.push_back(&bed.client);
  return nodes;
}

// Reaps exited children. A death we ordered (expect_death) is the
// schedule doing its job; anything else is a finding and fails the run.
void ReapChildren(Testbed& bed) {
  for (;;) {
    int status = 0;
    const pid_t pid = waitpid(-1, &status, WNOHANG);
    if (pid <= 0) {
      return;
    }
    for (NodeProc* node : AllNodes(bed)) {
      if (node->pid != pid) {
        continue;
      }
      node->pid = -1;
      if (!node->expect_death) {
        char what[160];
        std::snprintf(what, sizeof(what), "%s died unexpectedly (status %d)",
                      IncarnationName(*node).c_str(), status);
        std::fprintf(stderr, "nemesis: %s\n", what);
        bed.unexpected.push_back(what);
      }
    }
  }
}

void KillEverything(Testbed& bed) {
  for (NodeProc* node : AllNodes(bed)) {
    if (node->pid > 0) {
      kill(node->pid, SIGKILL);
      waitpid(node->pid, nullptr, 0);
      node->pid = -1;
    }
  }
}

// ------------------------------------------------------- fault plane --

// The network-wide plan currently in force, so a freshly restarted
// member's fault fabric can be brought up to date (its predecessor's
// plan died with the process).
struct ActivePlan {
  double loss = 0.0;
  double dup = 0.0;
  double jitter_ms = 0.0;
  std::vector<std::string> island;  // partitioned "host:port" endpoints
};

void SendFault(const NodeProc& node, const std::string& command) {
  if (node.faults_port == 0 || node.pid <= 0) {
    return;
  }
  std::optional<std::string> reply = UdpAsk(node.faults_port, command, 3, 400);
  if (!reply.has_value()) {
    std::fprintf(stderr, "nemesis: no fault-control reply from %s for '%s'\n",
                 IncarnationName(node).c_str(), command.c_str());
  } else if (reply->rfind("err", 0) == 0) {
    std::fprintf(stderr, "nemesis: %s rejected '%s': %s",
                 IncarnationName(node).c_str(), command.c_str(),
                 reply->c_str());
  }
}

void BroadcastFault(Testbed& bed, const std::string& command) {
  for (NodeProc* node : AllNodes(bed)) {
    SendFault(*node, command);
  }
}

std::vector<std::string> PlanCommands(const ActivePlan& plan) {
  char buf[256];
  std::vector<std::string> commands;
  std::snprintf(buf, sizeof(buf), "loss %.4f", plan.loss);
  commands.push_back(buf);
  std::snprintf(buf, sizeof(buf), "dup %.4f", plan.dup);
  commands.push_back(buf);
  std::snprintf(buf, sizeof(buf), "jitter_ms %.3f", plan.jitter_ms);
  commands.push_back(buf);
  if (!plan.island.empty()) {
    std::string partition = "partition";
    for (const std::string& endpoint : plan.island) {
      partition += " " + endpoint;
    }
    commands.push_back(partition);
  } else {
    commands.push_back("heal");
  }
  return commands;
}

// --------------------------------------------------------- readiness --

bool WaitForHealth(const NodeProc& node, const std::string& needle,
                   int budget_ms) {
  const int64_t deadline = MonotonicNanos() + int64_t{budget_ms} * 1000000;
  while (MonotonicNanos() < deadline && g_stop == 0) {
    std::optional<std::string> reply =
        UdpAsk(node.stats_port, "health", 1, 300);
    if (reply.has_value() && reply->find(needle) != std::string::npos &&
        reply->find("troupe unbound") == std::string::npos) {
      return true;
    }
    SleepMillis(100);
  }
  return false;
}

// ------------------------------------------------------------ result --

struct RunResult {
  uint64_t seed = 0;
  uint64_t schedule_digest = 0;
  int actions = 0;
  int kills = 0;
  int partitions = 0;
  int loss_bursts = 0;
  int latency_spikes = 0;
  int restarts = 0;
  size_t calls = 0;
  size_t ok = 0;
  size_t failed = 0;
  bool client_reported = false;
  bool converged = false;
  int convergence_attempts = 0;
  size_t violations = 0;
  uint64_t audit_records = 0;
  size_t completed_calls = 0;
  bool audit_complete = true;
  size_t captures = 0;
  size_t unexpected_deaths = 0;
  double wall_s = 0.0;

  bool Passed() const {
    return client_reported && calls > 0 && converged && violations == 0 &&
           unexpected_deaths == 0;
  }
};

void WriteJson(const RunResult& r, const std::string& path) {
  FILE* f = path.empty() ? stdout : std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "nemesis: cannot write %s: %s\n", path.c_str(),
                 std::strerror(errno));
    return;
  }
  const double availability =
      r.calls > 0 ? static_cast<double>(r.ok) / static_cast<double>(r.calls)
                  : 0.0;
  std::fprintf(f,
               "{\"seed\": %" PRIu64 ", \"schedule_digest\": %" PRIu64
               ", \"actions\": %d,\n"
               " \"kills\": %d, \"partitions\": %d, \"loss_bursts\": %d, "
               "\"latency_spikes\": %d, \"restarts\": %d,\n"
               " \"calls\": %zu, \"ok\": %zu, \"failed\": %zu, "
               "\"availability\": %.4f,\n"
               " \"converged\": %s, \"convergence_attempts\": %d,\n"
               " \"violations\": %zu, \"audit_records\": %" PRIu64
               ", \"completed_calls\": %zu, \"audit_complete\": %s,\n"
               " \"captures\": %zu, \"unexpected_deaths\": %zu, "
               "\"wall_s\": %.1f, \"passed\": %s}\n",
               r.seed, r.schedule_digest, r.actions, r.kills, r.partitions,
               r.loss_bursts, r.latency_spikes, r.restarts, r.calls, r.ok,
               r.failed, availability, r.converged ? "true" : "false",
               r.convergence_attempts, r.violations, r.audit_records,
               r.completed_calls, r.audit_complete ? "true" : "false",
               r.captures, r.unexpected_deaths, r.wall_s,
               r.Passed() ? "true" : "false");
  if (f != stdout) {
    std::fclose(f);
  }
}

// -------------------------------------------------------------- main --

struct Options {
  uint64_t seed = 1;
  std::string dir;
  std::string bin;
  int members = 3;
  int horizon_s = 25;
  int actions = 6;
  int base_port = 38400;
  std::string json;
  std::string workload = "echo";
};

bool ParseArgs(int argc, char** argv, Options* out) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      std::fprintf(stderr, "nemesis: bad argument '%s' (want key=value)\n",
                   arg.c_str());
      return false;
    }
    const std::string key = arg.substr(0, eq);
    const std::string value = arg.substr(eq + 1);
    if (key == "seed") {
      out->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "dir") {
      out->dir = value;
    } else if (key == "bin") {
      out->bin = value;
    } else if (key == "members") {
      out->members = std::atoi(value.c_str());
    } else if (key == "horizon_s") {
      out->horizon_s = std::atoi(value.c_str());
    } else if (key == "actions") {
      out->actions = std::atoi(value.c_str());
    } else if (key == "base_port") {
      out->base_port = std::atoi(value.c_str());
    } else if (key == "json") {
      out->json = value;
    } else if (key == "workload") {
      if (value != "echo" && value != "replfs") {
        std::fprintf(stderr, "nemesis: workload must be echo|replfs\n");
        return false;
      }
      out->workload = value;
    } else {
      std::fprintf(stderr, "nemesis: unknown key '%s'\n", key.c_str());
      return false;
    }
  }
  if (out->members < 2 || out->members > 8) {
    std::fprintf(stderr, "nemesis: members must be in [2, 8]\n");
    return false;
  }
  if (out->horizon_s < 10 || out->actions < 1) {
    std::fprintf(stderr, "nemesis: want horizon_s >= 10 and actions >= 1\n");
    return false;
  }
  return true;
}

// Blocks until `pid` exits or `budget_ms` passes; returns the exit code
// (or -1 on timeout / abnormal exit).
int AwaitExit(pid_t pid, int budget_ms) {
  const int64_t deadline = MonotonicNanos() + int64_t{budget_ms} * 1000000;
  for (;;) {
    int status = 0;
    const pid_t done = waitpid(pid, &status, WNOHANG);
    if (done == pid) {
      return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
    }
    if (MonotonicNanos() >= deadline || g_stop != 0) {
      return -1;
    }
    SleepMillis(50);
  }
}

// The convergence oracle: a short-lived unanimous-collation client
// calling the counter procedure. Unanimous collation rejects the reply
// set unless every member answered with identical bytes, so three green
// calls mean every member (restarted ones included) holds the same
// module state and advances it in lock step.
bool RunConvergenceClient(Testbed& bed, int attempt) {
  NodeProc verify;
  verify.role = "client";
  verify.port = static_cast<uint16_t>(bed.client.port + 1 + attempt);
  char name[64];
  std::snprintf(name, sizeof(name), "verify-%u", verify.port);
  verify.base_name = name;
  char extra[256];
  if (bed.workload == "replfs") {
    // The replfs oracle commits one known block and reads it back with
    // unanimous collation (read-your-writes across the healed troupe).
    std::snprintf(extra, sizeof(extra),
                  "ringmaster = 127.0.0.1:%u\ntroupe = chaos\n"
                  "workload = replfs\nverify = 1\npayload = 16\n",
                  bed.ringmaster.port);
  } else {
    std::snprintf(extra, sizeof(extra),
                  "ringmaster = 127.0.0.1:%u\ntroupe = chaos\n"
                  "calls = 3\npayload = 16\ncollation = unanimous\n"
                  "procedure = 1\n",
                  bed.ringmaster.port);
  }
  verify.extra = extra;
  SpawnNode(bed, verify);
  const int code = AwaitExit(verify.pid, 30000);
  if (code != 0 && verify.pid > 0) {
    kill(verify.pid, SIGKILL);
    waitpid(verify.pid, nullptr, 0);
  }
  verify.pid = -1;
  // Fold the verifier's capture into the audit set: its calls are
  // protocol traffic like any other and must survive the same rules.
  if (code == 0) {
    bed.client.captures.push_back(bed.dir + "/" + verify.base_name +
                                  ".tap.jsonl");
  }
  return code == 0;
}

size_t FileSize(const std::string& path) {
  struct stat st {};
  if (stat(path.c_str(), &st) != 0) {
    return 0;
  }
  return static_cast<size_t>(st.st_size);
}

// Parses the resilient client's availability line:
//   calls=N ok=N failed=N mean_ms=... min_ms=... max_ms=...
bool ParseClientReport(const std::string& log_path, RunResult* result) {
  FILE* f = std::fopen(log_path.c_str(), "r");
  if (f == nullptr) {
    return false;
  }
  char line[512];
  bool found = false;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    size_t calls = 0;
    size_t ok = 0;
    size_t failed = 0;
    if (std::sscanf(line, "calls=%zu ok=%zu failed=%zu", &calls, &ok,
                    &failed) == 3) {
      result->calls = calls;
      result->ok = ok;
      result->failed = failed;
      found = true;
    }
  }
  std::fclose(f);
  return found;
}

int Main(int argc, char** argv) {
  Options opt;
  if (!ParseArgs(argc, argv, &opt)) {
    std::fprintf(stderr,
                 "usage: circus_nemesis [seed=N] [dir=PATH] [bin=PATH] "
                 "[members=M] [horizon_s=S] [actions=N] [base_port=P] "
                 "[json=PATH] [workload=echo|replfs]\n");
    return 2;
  }
  struct sigaction sa {};
  sa.sa_handler = HandleStop;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  // SIGKILLed children must not leave the testbed wedged on a dead pipe.
  std::signal(SIGPIPE, SIG_IGN);

  if (opt.dir.empty()) {
    char tmpl[] = "/tmp/circus_nemesis.XXXXXX";
    const char* made = mkdtemp(tmpl);
    if (made == nullptr) {
      std::fprintf(stderr, "nemesis: mkdtemp: %s\n", std::strerror(errno));
      return 2;
    }
    opt.dir = made;
  }
  if (opt.bin.empty()) {
    // Default: circus_node sits next to this binary.
    std::string self = argv[0];
    const size_t slash = self.rfind('/');
    opt.bin = (slash == std::string::npos ? std::string(".")
                                          : self.substr(0, slash)) +
              "/circus_node";
  }
  if (access(opt.bin.c_str(), X_OK) != 0) {
    std::fprintf(stderr, "nemesis: %s is not executable\n", opt.bin.c_str());
    return 2;
  }

  const int64_t start_ns = MonotonicNanos();
  RunResult result;
  result.seed = opt.seed;

  // ------------------------------------------------------ the testbed --
  Testbed bed;
  bed.dir = opt.dir;
  bed.bin = opt.bin;
  bed.seed = opt.seed;
  bed.workload = opt.workload;
  const auto port_at = [&](int i) {
    return static_cast<uint16_t>(opt.base_port + i);
  };
  bed.ringmaster.role = "ringmaster";
  bed.ringmaster.port = port_at(0);
  bed.ringmaster.stats_port = port_at(40);
  bed.ringmaster.faults_port = port_at(80);
  bed.ringmaster.base_name = "ringmaster-" + std::to_string(port_at(0));
  for (int m = 1; m <= opt.members; ++m) {
    NodeProc member;
    member.role = "member";
    member.port = port_at(m);
    member.stats_port = port_at(40 + m);
    member.faults_port = port_at(80 + m);
    member.base_name = "member-" + std::to_string(member.port);
    char extra[160];
    std::snprintf(extra, sizeof(extra),
                  "ringmaster = 127.0.0.1:%u\ntroupe = chaos\n"
                  "interface = chaos\nworkload = %s\n",
                  bed.ringmaster.port, bed.workload.c_str());
    member.extra = extra;
    bed.members.push_back(member);
  }
  bed.client.role = "client";
  bed.client.port = port_at(opt.members + 1);
  bed.client.stats_port = port_at(40 + opt.members + 1);
  bed.client.faults_port = port_at(80 + opt.members + 1);
  bed.client.base_name = "client-" + std::to_string(bed.client.port);
  if (bed.workload == "replfs") {
    // The availability probe: one single-block replfs transaction per
    // probe (broadcast staging + troupe commit), paced at 50 ms.
    char extra[200];
    std::snprintf(extra, sizeof(extra),
                  "ringmaster = 127.0.0.1:%u\ntroupe = chaos\n"
                  "workload = replfs\ncalls = 1000000\npayload = 16\n"
                  "resilient = 1\n",
                  bed.ringmaster.port);
    bed.client.extra = extra;
  } else {
    // The availability probe: echo calls (stateless, so mid-chaos
    // partial deliveries cannot diverge member state) paced at 50 ms,
    // first-come collation so one reachable member is enough.
    char extra[200];
    std::snprintf(extra, sizeof(extra),
                  "ringmaster = 127.0.0.1:%u\ntroupe = chaos\n"
                  "calls = 1000000\npayload = 32\nresilient = 1\n"
                  "collation = first_come\nprocedure = 0\n",
                  bed.ringmaster.port);
    bed.client.extra = extra;
  }

  std::fprintf(stderr,
               "nemesis: seed=%" PRIu64
               " dir=%s members=%d horizon=%ds workload=%s\n",
               opt.seed, bed.dir.c_str(), opt.members, opt.horizon_s,
               bed.workload.c_str());

  SpawnNode(bed, bed.ringmaster);
  SleepMillis(300);
  for (NodeProc& member : bed.members) {
    SpawnNode(bed, member);
    // Members join sequentially: the get_state handshake wants the
    // previous member serving before the next one copies state from it.
    if (!WaitForHealth(member, "troupe ", 15000)) {
      std::fprintf(stderr, "nemesis: %s never joined\n",
                   member.base_name.c_str());
      KillEverything(bed);
      return 2;
    }
  }
  SpawnNode(bed, bed.client);
  SleepMillis(500);
  ReapChildren(bed);
  if (!bed.unexpected.empty() || g_stop != 0) {
    KillEverything(bed);
    return 2;
  }
  std::fprintf(stderr, "nemesis: testbed up (%d members joined)\n",
               opt.members);

  // ----------------------------------------------------- the schedule --
  chaos::ScheduleOptions schedule_options;
  schedule_options.horizon = sim::Duration::Seconds(opt.horizon_s);
  schedule_options.min_start = sim::Duration::Seconds(3);
  schedule_options.actions = opt.actions;
  schedule_options.skew_weight = 0;  // one kernel clock on loopback
  const chaos::Schedule schedule =
      chaos::GenerateSchedule(opt.seed, schedule_options);
  result.schedule_digest = schedule.Digest();
  result.actions = static_cast<int>(schedule.actions.size());
  std::fprintf(stderr, "nemesis: schedule digest=%" PRIu64 "\n%s",
               schedule.Digest(), schedule.ToString().c_str());

  // Wall-clock event queue, nanoseconds since testbed start. Durations
  // are clamped to [2 s, 8 s]: long enough for real retransmit timers
  // to fire, short enough that one run stays interactive.
  const auto clamp_duration = [](sim::Duration d) {
    const int64_t ns =
        std::clamp(d.nanos(), int64_t{2000000000}, int64_t{8000000000});
    return sim::Duration::Nanos(ns);
  };
  std::multimap<int64_t, std::function<void()>> events;
  ActivePlan plan;

  const auto restart_member = [&](NodeProc* member) {
    member->restarts += 1;
    ++result.restarts;
    SpawnNode(bed, *member);
    std::fprintf(stderr, "nemesis: restarted %s (pid %d)\n",
                 IncarnationName(*member).c_str(), member->pid);
    // Its fresh fault fabric starts with a clean plan; bring it in
    // line with whatever chaos is still in force network-wide.
    for (const std::string& command : PlanCommands(plan)) {
      SendFault(*member, command);
    }
  };

  for (const chaos::FaultAction& action : schedule.actions) {
    const int64_t at_ns = action.at.nanos();
    const int64_t end_ns = at_ns + clamp_duration(action.duration).nanos();
    switch (action.kind) {
      case chaos::FaultKind::kCrashMember: {
        events.emplace(at_ns, [&, action] {
          // Victim by rank into the currently-live members; if every
          // member is already down-and-restarting, skip the kill.
          const size_t count = bed.members.size();
          for (size_t probe = 0; probe < count; ++probe) {
            NodeProc& victim =
                bed.members[(action.victim_rank + probe) % count];
            if (victim.pid <= 0 || victim.expect_death) {
              continue;
            }
            std::fprintf(stderr, "nemesis: SIGKILL %s (pid %d)\n",
                         IncarnationName(victim).c_str(), victim.pid);
            victim.expect_death = true;
            kill(victim.pid, SIGKILL);
            ++result.kills;
            // Restart 3 s later: past the silence budget, so peers
            // have declared the old incarnation crashed, and the
            // reborn process's clock-seeded call numbers are put to
            // a real test against their duplicate-suppression state.
            NodeProc* victim_ptr = &victim;
            events.emplace(
                MonotonicNanos() - start_ns + 3000000000,
                [&restart_member, victim_ptr] { restart_member(victim_ptr); });
            return;
          }
          std::fprintf(stderr, "nemesis: crash skipped, no live victim\n");
        });
        break;
      }
      case chaos::FaultKind::kPartition: {
        events.emplace(at_ns, [&, action] {
          const size_t count = bed.members.size();
          const size_t island =
              std::min<size_t>(std::max<uint32_t>(action.island_size, 1),
                               count - 1);
          plan.island.clear();
          for (size_t i = 0; i < island; ++i) {
            const NodeProc& member =
                bed.members[(action.victim_rank + i) % count];
            plan.island.push_back("127.0.0.1:" +
                                  std::to_string(member.port));
          }
          std::string partition = "partition";
          for (const std::string& endpoint : plan.island) {
            partition += " " + endpoint;
          }
          std::fprintf(stderr, "nemesis: %s\n", partition.c_str());
          BroadcastFault(bed, partition);
          ++result.partitions;
        });
        events.emplace(end_ns, [&] {
          plan.island.clear();
          std::fprintf(stderr, "nemesis: heal\n");
          BroadcastFault(bed, "heal");
        });
        break;
      }
      case chaos::FaultKind::kLossBurst: {
        events.emplace(at_ns, [&, action] {
          // Cap the drop probability: the schedule generator draws up
          // to 0.9 for the simulator, but a real client probing at
          // 50 ms through 90% loss measures nothing but its own
          // retransmit budget.
          plan.loss = std::min(action.loss, 0.4);
          plan.dup = std::min(action.duplicate, 0.3);
          char loss_cmd[64];
          char dup_cmd[64];
          std::snprintf(loss_cmd, sizeof(loss_cmd), "loss %.4f", plan.loss);
          std::snprintf(dup_cmd, sizeof(dup_cmd), "dup %.4f", plan.dup);
          std::fprintf(stderr, "nemesis: %s %s\n", loss_cmd, dup_cmd);
          BroadcastFault(bed, loss_cmd);
          BroadcastFault(bed, dup_cmd);
          ++result.loss_bursts;
        });
        events.emplace(end_ns, [&] {
          plan.loss = 0.0;
          plan.dup = 0.0;
          std::fprintf(stderr, "nemesis: loss burst over\n");
          BroadcastFault(bed, "loss 0");
          BroadcastFault(bed, "dup 0");
        });
        break;
      }
      case chaos::FaultKind::kLatencySpike: {
        events.emplace(at_ns, [&, action] {
          plan.jitter_ms = action.extra_delay.ToMillisF();
          char command[64];
          std::snprintf(command, sizeof(command), "jitter_ms %.3f",
                        plan.jitter_ms);
          std::fprintf(stderr, "nemesis: %s\n", command);
          BroadcastFault(bed, command);
          ++result.latency_spikes;
        });
        events.emplace(end_ns, [&] {
          plan.jitter_ms = 0.0;
          std::fprintf(stderr, "nemesis: latency spike over\n");
          BroadcastFault(bed, "jitter_ms 0");
        });
        break;
      }
      case chaos::FaultKind::kClockSkew:
        break;  // skew_weight=0; kernel clock is shared anyway
    }
  }

  // Drain the queue in wall-clock order; restarts inserted mid-drain
  // land back in the same queue.
  while (!events.empty() && g_stop == 0) {
    const int64_t due = events.begin()->first;
    while (MonotonicNanos() - start_ns < due && g_stop == 0) {
      SleepMillis(50);
      ReapChildren(bed);
    }
    auto it = events.begin();
    const std::function<void()> fire = it->second;
    events.erase(it);
    fire();
  }

  // -------------------------------------------- heal, settle, verify --
  plan = ActivePlan{};
  BroadcastFault(bed, "clear");
  BroadcastFault(bed, "heal");
  std::fprintf(stderr, "nemesis: schedule drained, settling\n");
  for (int i = 0; i < 50 && g_stop == 0; ++i) {
    SleepMillis(100);
    ReapChildren(bed);
  }

  // Every member (restarted incarnations included) must be back in the
  // troupe before the convergence probe means anything.
  for (NodeProc& member : bed.members) {
    if (!WaitForHealth(member, "troupe ", 20000)) {
      std::fprintf(stderr, "nemesis: %s did not rejoin after heal\n",
                   IncarnationName(member).c_str());
    }
  }

  for (int attempt = 0; attempt < 3 && g_stop == 0; ++attempt) {
    result.convergence_attempts = attempt + 1;
    if (RunConvergenceClient(bed, attempt)) {
      result.converged = true;
      break;
    }
    std::fprintf(stderr, "nemesis: convergence attempt %d failed\n",
                 attempt + 1);
    SleepMillis(2000);
  }

  // ------------------------------------------------ collect and audit --
  for (NodeProc* node : AllNodes(bed)) {
    if (node->pid > 0) {
      node->expect_death = true;
      kill(node->pid, SIGTERM);
    }
  }
  for (NodeProc* node : AllNodes(bed)) {
    if (node->pid > 0) {
      if (AwaitExit(node->pid, 10000) < 0 && node->pid > 0) {
        kill(node->pid, SIGKILL);
      }
      waitpid(node->pid, nullptr, 0);
      node->pid = -1;
    }
  }
  result.unexpected_deaths = bed.unexpected.size();

  const std::string client_log = bed.dir + "/" + bed.client.base_name + ".log";
  result.client_reported = ParseClientReport(client_log, &result);
  if (!result.client_reported) {
    std::fprintf(stderr, "nemesis: no availability line in %s\n",
                 client_log.c_str());
  }

  // Capture paths in spawn order: per node, each incarnation after its
  // predecessor, so the auditor sees an incarnation's traffic in time
  // order (this is what lets it check call-identifier reuse across the
  // SIGKILL/restart boundary). A capture a SIGKILL caught before its
  // first flush may be empty; skip those rather than fail the read.
  std::vector<std::string> capture_paths;
  for (NodeProc* node : AllNodes(bed)) {
    for (const std::string& path : node->captures) {
      if (FileSize(path) > 0) {
        capture_paths.push_back(path);
      } else {
        std::fprintf(stderr, "nemesis: skipping empty capture %s\n",
                     path.c_str());
      }
    }
  }
  result.captures = capture_paths.size();
  // Default endpoint options are what circus_node runs with. The member
  // address list stays empty: members legitimately exchange get_state
  // during joins and rejoins, which the member-to-member check would
  // misread as a Section 4.3.3 violation.
  circus::StatusOr<obs::wire::AuditReport> audit =
      obs::wire::AuditCaptureFiles(
          capture_paths, obs::wire::AuditOptionsFor(msg::EndpointOptions{}));
  if (!audit.ok()) {
    std::fprintf(stderr, "nemesis: audit failed: %s\n",
                 audit.status().ToString().c_str());
    result.violations = 1;
  } else {
    result.violations = audit->violations.size();
    result.audit_records = audit->records;
    result.audit_complete = audit->complete;
    result.completed_calls = audit->CompletedCalls();
    std::fprintf(stderr, "%s", audit->Render(20, false).c_str());
  }

  result.wall_s =
      static_cast<double>(MonotonicNanos() - start_ns) / 1e9;
  WriteJson(result, opt.json);
  std::fprintf(stderr,
               "nemesis: %s (calls=%zu ok=%zu failed=%zu violations=%zu "
               "converged=%d restarts=%d)\n",
               result.Passed() ? "PASS" : "FAIL", result.calls, result.ok,
               result.failed, result.violations, result.converged ? 1 : 0,
               result.restarts);
  return result.Passed() ? 0 : 1;
}

}  // namespace
}  // namespace circus::rt

int main(int argc, char** argv) { return circus::rt::Main(argc, argv); }
