#include "src/rt/introspect.h"

#include <sys/resource.h>
#include <time.h>

#include <cinttypes>
#include <cstdio>
#include <utility>

#include "src/marshal/marshal.h"
#include "src/msg/segment.h"
#include "src/obs/export.h"
#include "src/obs/trace.h"

namespace circus::rt {

namespace {

// Replies must fit one datagram so `nc -u` conversations always work.
constexpr size_t kMaxReplyBytes = net::Fabric::kMaxDatagramBytes;

std::string Truncated(std::string text) {
  if (text.size() <= kMaxReplyBytes) {
    return text;
  }
  constexpr std::string_view kMark = "...\n";
  text.resize(kMaxReplyBytes - kMark.size());
  // Cut at a line boundary when there is one: consumers that validate
  // line formats (check_realnet) must never see a half metric line.
  const size_t last_newline = text.rfind('\n');
  if (last_newline != std::string::npos) {
    text.resize(last_newline + 1);
  }
  text += kMark;
  return text;
}

// Paged reply framing: "chunk <offset> <next>\n" (next = "end" on the
// last chunk) followed by the bytes of `text` starting at `offset`,
// bounded to one datagram. Clients re-query with <next> and
// concatenate the bodies to reassemble the full text.
std::string Paged(const std::string& text, size_t offset) {
  if (offset > text.size()) {
    offset = text.size();
  }
  char header[64];
  size_t body = text.size() - offset;
  int header_len = 0;
  for (;;) {
    const size_t next = offset + body;
    header_len =
        next == text.size()
            ? std::snprintf(header, sizeof(header), "chunk %zu end\n", offset)
            : std::snprintf(header, sizeof(header), "chunk %zu %zu\n", offset,
                            next);
    if (static_cast<size_t>(header_len) + body <= kMaxReplyBytes) {
      break;
    }
    // Shrinking the body can only shrink the header, so this converges.
    body = kMaxReplyBytes - static_cast<size_t>(header_len);
  }
  std::string reply(header, static_cast<size_t>(header_len));
  reply.append(text, offset, body);
  return reply;
}

// Strictly parses the decimal offset of a paged query form.
bool ParseOffset(std::string_view s, size_t* out) {
  if (s.empty() || s.size() > 12) {
    return false;
  }
  size_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return false;
    }
    value = value * 10 + static_cast<size_t>(c - '0');
  }
  *out = value;
  return true;
}

std::string_view TrimView(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t' ||
                        s.front() == '\r' || s.front() == '\n')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t' ||
                        s.back() == '\r' || s.back() == '\n')) {
    s.remove_suffix(1);
  }
  return s;
}

sim::Task<void> ServeStats(NodeObservability* node,
                           net::DatagramSocket* socket) {
  for (;;) {
    net::Datagram request = co_await socket->Receive();
    std::string query(request.payload.begin(), request.payload.end());
    std::string reply = node->HandleQuery(query);
    circus::Bytes bytes(reply.begin(), reply.end());
    co_await socket->Send(request.source, std::move(bytes));
  }
}

sim::Task<void> PeriodicFlush(NodeObservability* node, sim::Host* host) {
  for (;;) {
    co_await host->SleepFor(sim::Duration::Millis(250));
    node->SampleUtilization();
    node->FlushShard();  // no-op when nothing is pending
  }
}

// CPU this thread has burned, per CLOCK_THREAD_CPUTIME_ID. The whole
// node is single-threaded, so thread CPU == process CPU, but the thread
// clock stays honest if that ever changes.
int64_t ThreadCpuNanos() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) {
    return 0;
  }
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

// Context switches from getrusage: voluntary ones are epoll sleeps,
// involuntary ones mean the scheduler preempted a busy loop.
uint64_t ContextSwitches() {
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) {
    return 0;
  }
  return static_cast<uint64_t>(ru.ru_nvcsw) +
         static_cast<uint64_t>(ru.ru_nivcsw);
}

// Deeper than the ShardWriter default: a node under replicated-call
// load emits tens of thousands of events per second, and dropping the
// oldest unflushed lines must stay a genuine overload signal, not a
// steady-state one (losing the startup binding exchange would cost the
// merge its clock-alignment samples against the ringmaster).
constexpr size_t kNodeShardCapacity = 65536;

}  // namespace

std::string ShardPathFor(const NodeConfig& config) {
  if (config.trace_dir.empty()) {
    return "";
  }
  return config.trace_dir + "/" + config.DisplayName() + ".trace.jsonl";
}

std::string MetricsPathFor(const NodeConfig& config) {
  if (config.trace_dir.empty()) {
    return "";
  }
  return config.trace_dir + "/" + config.DisplayName() + ".metrics.prom";
}

std::string TapPathFor(const NodeConfig& config) {
  if (config.tap_dir.empty()) {
    return "";
  }
  return config.tap_dir + "/" + config.DisplayName() + ".tap.jsonl";
}

NodeObservability::NodeObservability(Runtime* runtime, sim::Host* host,
                                     const NodeConfig& config)
    : runtime_(runtime), config_(config) {
  obs::LatencyAttributor::Options lat_options;
  lat_options.slow_call_threshold_ns =
      static_cast<int64_t>(config.slow_call_us) * 1000;
  attributor_ = std::make_unique<obs::LatencyAttributor>(lat_options);
  attributor_->Attach(&runtime->bus());

  obs::ShardInfo info;
  info.node = config.DisplayName();
  info.role = config.RoleName();
  info.address = config.listen.ToString();
  info.incarnation = runtime->incarnation();
  info.clock = "realtime";
  shard_ = std::make_unique<obs::ShardWriter>(
      ShardPathFor(config), std::move(info), kNodeShardCapacity);
  if (!shard_->ok()) {
    status_ = circus::Status(circus::ErrorCode::kUnavailable,
                             "cannot write trace shard " + shard_->path());
  }
  shard_->Attach(&runtime->bus());

  const std::string tap_path = TapPathFor(config);
  if (!tap_path.empty()) {
    net::WireTapInfo tap_info;
    tap_info.node = config.DisplayName();
    tap_info.clock = "realtime";
    tap_ = std::make_unique<net::WireTapWriter>(
        tap_path, std::move(tap_info),
        [runtime] { return runtime->now().nanos(); }, kNodeShardCapacity);
    if (!tap_->ok() && status_.ok()) {
      status_ = circus::Status(circus::ErrorCode::kUnavailable,
                               "cannot write packet capture " + tap_->path());
    }
    runtime->fabric().set_packet_tap(tap_.get());
  }

  WireUtilizationProbes();
  SampleUtilization();  // baseline every probe at construction

  // Always spawned: beyond shard/tap flushing it drives the 250 ms
  // utilization sampling that feeds kSaturation events, the health
  // `load` grade, and the `util` query.
  host->Spawn(PeriodicFlush(this, host));

  if (config.stats_port != 0) {
    circus::StatusOr<std::unique_ptr<net::DatagramSocket>> socket =
        net::DatagramSocket::Open(&runtime->fabric(), host,
                                  config.stats_port);
    if (!socket.ok()) {
      stats_status_ = socket.status();
      if (status_.ok()) {
        status_ = socket.status();
      }
    } else {
      stats_socket_ = std::move(*socket);
      host->Spawn(ServeStats(this, stats_socket_.get()));
    }
  }
}

NodeObservability::~NodeObservability() {
  if (tap_ != nullptr) {
    runtime_->fabric().set_packet_tap(nullptr);
  }
  FlushShard();
}

void NodeObservability::WireUtilizationProbes() {
  monitor_.SetBus(&runtime_->bus());
  monitor_.SetMetrics(&runtime_->metrics());
  IoLoop* loop = &runtime_->loop();
  sim::Executor* executor = &runtime_->executor();
  monitor_.AddResource(
      "rt.loop", [loop, executor, prev = loop->stats()](int64_t) mutable {
        obs::ResourceSample sample;
        const IoLoopStats now = loop->stats();
        const int64_t busy = now.busy_ns - prev.busy_ns;
        const int64_t idle = now.idle_ns - prev.idle_ns;
        if (busy + idle > 0) {
          sample.utilization =
              static_cast<double>(busy) / static_cast<double>(busy + idle);
        }
        sample.ops = now.wakeups - prev.wakeups;
        sample.queue = static_cast<double>(executor->pending_events());
        prev = now;
        return sample;
      });
  monitor_.AddResource(
      "cpu.process",
      [prev_cpu = ThreadCpuNanos(),
       prev_csw = ContextSwitches()](int64_t window_ns) mutable {
        obs::ResourceSample sample;
        const int64_t cpu = ThreadCpuNanos();
        const uint64_t csw = ContextSwitches();
        if (window_ns > 0) {
          sample.utilization = static_cast<double>(cpu - prev_cpu) /
                               static_cast<double>(window_ns);
        }
        sample.ops = csw - prev_csw;
        prev_cpu = cpu;
        prev_csw = csw;
        return sample;
      });
  UdpFabric* fabric = &runtime_->fabric();
  monitor_.AddResource(
      "net.udp",
      [fabric, prev = fabric->stats()](int64_t) mutable {
        obs::ResourceSample sample;
        const UdpFabricStats now = fabric->stats();
        sample.ops = (now.packets_sent - prev.packets_sent) +
                     (now.packets_delivered - prev.packets_delivered);
        sample.bytes = (now.bytes_sent - prev.bytes_sent) +
                       (now.bytes_delivered - prev.bytes_delivered);
        // EAGAIN/ENOBUFS backpressure drops are send_errors too, so
        // they are already in this sum alongside oversize datagrams.
        sample.errors = (now.send_errors - prev.send_errors) +
                        (now.truncated - prev.truncated);
        sample.queue =
            static_cast<double>(fabric->TotalReceiveBacklog());
        prev = now;
        return sample;
      },
      obs::ResourceGrading{.high_queue = 64, .saturated_queue = 256});
  monitor_.AddResource(
      "alloc.marshal",
      [prev = marshal::GlobalBufferStats()](int64_t) mutable {
        obs::ResourceSample sample;
        const marshal::BufferStats now = marshal::GlobalBufferStats();
        sample.ops = now.buffers - prev.buffers;
        sample.bytes = now.bytes - prev.bytes;
        prev = now;
        return sample;
      });
  monitor_.AddResource(
      "msg.segment",
      [prev = msg::GlobalSegmentStats()](int64_t) mutable {
        obs::ResourceSample sample;
        const msg::SegmentStats now = msg::GlobalSegmentStats();
        sample.ops = now.segments - prev.segments;
        sample.bytes = now.bytes - prev.bytes;
        prev = now;
        return sample;
      });
  obs::ShardWriter* shard = shard_.get();
  obs::ResourceGrading shard_grading;
  shard_grading.high_queue = static_cast<double>(shard->capacity()) * 0.7;
  shard_grading.saturated_queue =
      static_cast<double>(shard->capacity()) * 0.9;
  monitor_.AddResource(
      "obs.shard",
      [shard, prev_observed = shard->observed(),
       prev_dropped = shard->dropped()](int64_t) mutable {
        obs::ResourceSample sample;
        sample.ops = shard->observed() - prev_observed;
        sample.errors = shard->dropped() - prev_dropped;
        sample.queue = static_cast<double>(shard->pending());
        prev_observed = shard->observed();
        prev_dropped = shard->dropped();
        return sample;
      },
      shard_grading);
}

void NodeObservability::SampleUtilization() {
  monitor_.Sample(runtime_->now().nanos());
}

void NodeObservability::DumpSlowCalls() {
  if (config_.slow_call_us <= 0) {
    return;
  }
  for (const obs::CallExemplar& slow : attributor_->TakeSlowCalls()) {
    obs::Event e;
    e.kind = obs::EventKind::kSlowCall;
    e.time_ns = slow.timeline.collate_ns;
    e.incarnation = runtime_->incarnation();
    e.origin = slow.timeline.client_origin;
    e.thread = slow.timeline.thread;
    e.thread_seq = slow.timeline.seq;
    e.a = static_cast<uint64_t>(slow.timeline.end_to_end_ns());
    e.b = static_cast<uint64_t>(config_.slow_call_us) * 1000;
    e.detail = slow.timeline.ToString();
    // Injected straight into the shard, not published on the bus: a bus
    // subscriber must not re-enter Publish, and the dump is a per-node
    // diagnostic, not a protocol event.
    shard_->Observe(e);
  }
}

void NodeObservability::FlushShard() {
  DumpSlowCalls();
  // Errors are sticky in status() but must not kill a serving node.
  circus::Status flushed = shard_->Flush();
  if (!flushed.ok() && status_.ok()) {
    status_ = flushed;
  }
  if (tap_ != nullptr) {
    circus::Status tapped = tap_->Flush();
    if (!tapped.ok() && status_.ok()) {
      status_ = tapped;
    }
  }
}

void NodeObservability::FinalFlush() {
  FlushShard();
  const std::string metrics = MetricsText();
  const std::string path = MetricsPathFor(config_);
  if (path.empty()) {
    std::fprintf(stderr, "--- final metrics (%s) ---\n%s",
                 config_.DisplayName().c_str(), metrics.c_str());
    return;
  }
  circus::Status written = obs::WriteStringToFile(path, metrics);
  if (!written.ok() && status_.ok()) {
    status_ = written;
  }
}

std::string NodeObservability::HandleQuery(std::string_view query) {
  const std::string_view q = TrimView(query);
  if (q == "metrics") {
    return Truncated(MetricsText());
  }
  if (q == "health") {
    return Truncated(HealthText());
  }
  if (q == "spans") {
    return Truncated(SpansText());
  }
  if (q == "latency") {
    return Truncated(LatencyText());
  }
  if (q == "util") {
    return Truncated(UtilText());
  }
  const struct {
    std::string_view prefix;
    std::string (NodeObservability::*text)() const;
  } kPagedQueries[] = {
      {"metrics ", &NodeObservability::MetricsText},
      {"spans ", &NodeObservability::SpansText},
      {"latency ", &NodeObservability::LatencyText},
      {"util ", &NodeObservability::UtilText},
  };
  for (const auto& paged : kPagedQueries) {
    if (!q.starts_with(paged.prefix)) {
      continue;
    }
    size_t offset = 0;
    if (!ParseOffset(TrimView(q.substr(paged.prefix.size())), &offset)) {
      return "err bad offset (try: metrics <offset> | spans <offset> | "
             "latency <offset> | util <offset>)\n";
    }
    return Paged((this->*paged.text)(), offset);
  }
  std::string reply = "err unknown query '";
  reply.append(q.substr(0, 32));
  reply += "' (try: metrics | health | spans | latency | util)\n";
  return Truncated(std::move(reply));
}

std::string NodeObservability::MetricsText() const {
  // Shard drop-marker and flush accounting leads the exposition so it
  // survives even when the bare (one-datagram, truncated) reply cuts
  // the registry tail — a shard silently dropping events is exactly
  // the condition an operator queries `metrics` to notice.
  std::string out;
  const struct {
    const char* metric;
    const char* type;
    uint64_t value;
  } kShardSeries[] = {
      {"circus_shard_observed_total", "counter", shard_->observed()},
      {"circus_shard_dropped_total", "counter", shard_->dropped()},
      {"circus_shard_pending_lines", "gauge",
       static_cast<uint64_t>(shard_->pending())},
      {"circus_shard_flushes_total", "counter", shard_->flushes()},
      {"circus_shard_flush_failures_total", "counter",
       shard_->flush_failures()},
  };
  for (const auto& series : kShardSeries) {
    out += std::string("# TYPE ") + series.metric + " " + series.type +
           "\n";
    out += std::string(series.metric) + " " +
           std::to_string(series.value) + "\n";
  }
  out += runtime_->metrics().Snap(runtime_->now().nanos()).ToPrometheus();
  return out;
}

std::string NodeObservability::LatencyText() const {
  return attributor_->ToPrometheus();
}

std::string NodeObservability::UtilText() const {
  return monitor_.ToPrometheus();
}

std::string NodeObservability::HealthText() const {
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "ok %s\nrole %s\naddr %s\n",
                config_.DisplayName().c_str(), config_.RoleName(),
                config_.listen.ToString().c_str());
  out += line;
  std::snprintf(line, sizeof(line), "incarnation %" PRIu64 "\n",
                runtime_->incarnation());
  out += line;
  // The worst saturation grade across every monitored resource — the
  // one-word answer to "is this node running hot".
  std::snprintf(line, sizeof(line), "load %s\n",
                obs::SaturationLevelName(monitor_.WorstLevel()));
  out += line;
  if (process_ == nullptr) {
    out += "troupe unbound\npeers 0\n";
    return out;
  }
  std::snprintf(line, sizeof(line), "troupe %" PRIu64 "\n",
                process_->troupe_id().value);
  out += line;
  const msg::PairedEndpoint& endpoint = process_->endpoint();
  // Graded per-peer states instead of bare liveness:
  //   ok          heard from within two probe intervals;
  //   degraded    silent, but still inside the probe machinery's crash
  //               budget (max_silent_probes probes, probe_interval
  //               apart) — retransmits may still get through;
  //   partitioned the local fault fabric is blocking the path, so the
  //               silence is explained (and expected to heal);
  //   dead        silent past the crash budget with no partition to
  //               blame.
  const sim::Duration probe = endpoint.options().probe_interval;
  const sim::Duration budget =
      probe * endpoint.options().max_silent_probes;
  const sim::TimePoint now = runtime_->now();
  std::snprintf(line, sizeof(line), "peers %zu\n",
                endpoint.PeerActivity().size());
  out += line;
  for (const auto& [peer, last_seen] : endpoint.PeerActivity()) {
    const sim::Duration age = now - last_seen;
    const char* state = "ok";
    if (fault_fabric_ != nullptr &&
        fault_fabric_->PathBlocked(config_.listen, peer)) {
      state = "partitioned";
    } else if (age <= probe * 2) {
      state = "ok";
    } else if (age <= budget) {
      state = "degraded";
    } else {
      state = "dead";
    }
    std::snprintf(line, sizeof(line), "peer %s age_ms=%.0f %s\n",
                  peer.ToString().c_str(), age.ToMillisF(), state);
    out += line;
  }
  return out;
}

std::string NodeObservability::SpansText() const {
  const std::vector<obs::Event> recent = shard_->Recent();
  const std::vector<obs::Span> roots = obs::AssembleSpans(recent);
  if (roots.empty()) {
    return "no spans\n";
  }
  return obs::Render(roots);
}

}  // namespace circus::rt
