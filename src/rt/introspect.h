// Live node observability: the trace shard and the one-datagram text
// introspection endpoint of a circus_node (ISSUE: "observing a live
// node", DESIGN.md Section 6).
//
// NodeObservability bundles what every rt node needs to be observable:
//
//  * a ShardWriter subscribed to the runtime's bus — a bounded ring of
//    recent events always, plus a JSONL trace shard on disk when the
//    config sets trace_dir= (flushed periodically and at shutdown);
//  * a UDP stats socket (stats_port=) answering single-datagram text
//    queries with single-datagram text replies:
//        metrics  -> Prometheus exposition of the MetricsRegistry
//        health   -> role, troupe ID, and per-peer liveness judged by
//                    the paired-endpoint probe budget
//        spans    -> recent root-thread span trees from the ring
//        latency  -> per-stage call-latency percentiles from the
//                    node's LatencyAttributor, Prometheus text
//        util     -> per-resource utilization/saturation readings from
//                    the node's UtilizationMonitor (USE method: loop
//                    busy share, process CPU, socket backlog,
//                    allocation rates), Prometheus text
//    Replies are truncated to one datagram (net::Fabric MTU) so the
//    endpoint can be driven with nothing more than netcat. Replies too
//    large for one datagram are readable in full through the paged
//    forms `<query> <offset>` (any query above except health): the
//    reply's first
//    line is `chunk <offset> <next>` (next = "end" on the last chunk)
//    and the rest is the bytes of the full text starting at <offset> —
//    re-query with <next> until "end" and concatenate;
//  * a net::Fabric packet tap mirroring every datagram this process
//    sends or receives into <tap_dir>/<node_name>.tap.jsonl when the
//    config sets tap_dir= (decoded and audited by circus_wire).
//
// The serve loop runs as a coroutine on the node's host, so a host
// crash reaps it exactly like any protocol task.
#ifndef SRC_RT_INTROSPECT_H_
#define SRC_RT_INTROSPECT_H_

#include <memory>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/core/process.h"
#include "src/net/fault_fabric.h"
#include "src/net/socket.h"
#include "src/net/tap.h"
#include "src/obs/latency.h"
#include "src/obs/shard.h"
#include "src/obs/util.h"
#include "src/rt/node_config.h"
#include "src/rt/runtime.h"

namespace circus::rt {

// The shard path a node derives from its config; empty when tracing is
// off. Exposed so tools (and check scripts) agree on the layout:
// <trace_dir>/<display name>.trace.jsonl
std::string ShardPathFor(const NodeConfig& config);
// Companion path for the final metrics snapshot:
// <trace_dir>/<display name>.metrics.prom
std::string MetricsPathFor(const NodeConfig& config);
// Packet-capture path derived from tap_dir; empty when capture is off:
// <tap_dir>/<display name>.tap.jsonl
std::string TapPathFor(const NodeConfig& config);

class NodeObservability {
 public:
  // Starts observing `runtime`'s bus and, when config.stats_port is
  // set, serving the introspection endpoint from `host`. Construction
  // never fails hard: a shard that cannot be opened or a stats port
  // that cannot be bound degrade to a warning via status().
  NodeObservability(Runtime* runtime, sim::Host* host,
                    const NodeConfig& config);
  NodeObservability(const NodeObservability&) = delete;
  NodeObservability& operator=(const NodeObservability&) = delete;
  ~NodeObservability();

  // kOk, or the first degradation hit during construction.
  const circus::Status& status() const { return status_; }

  // The stats-endpoint bind result, separately from status(): kOk when
  // stats_port is 0 or the bind succeeded. circus_node fails fast on
  // this (a conflicting stats_port is an operator error, not a
  // degradation to limp through).
  const circus::Status& stats_status() const { return stats_status_; }

  // Wires the process whose troupe/peer state the health query reports.
  void SetProcess(core::RpcProcess* process) { process_ = process; }

  // Wires the node's fault fabric (may be null) so health can tell a
  // partitioned peer from a dead one.
  void SetFaultFabric(const net::FaultFabric* fabric) {
    fault_fabric_ = fabric;
  }

  obs::ShardWriter& shard() { return *shard_; }
  // The node's USE-method utilization monitor (always attached; the
  // `util` query, the health `load` grade, and circus_top read it).
  obs::UtilizationMonitor& util() { return monitor_; }

  // Samples every utilization probe at the runtime's current time. The
  // periodic flush task drives this every 250 ms; exposed so tests and
  // shutdown paths can force a fresh reading.
  void SampleUtilization();
  // The packet capture, or nullptr when tap_dir is unset.
  net::WireTapWriter* tap() { return tap_.get(); }
  // The node's stage-level latency attributor (always attached; the
  // `latency` query and the slow-call dump read from it).
  obs::LatencyAttributor& latency() { return *attributor_; }

  // Appends buffered trace lines to disk. The node calls this
  // periodically (cheap when nothing is pending) and from FinalFlush.
  void FlushShard();

  // Shutdown path: flushes the shard and writes a final Prometheus
  // snapshot to MetricsPathFor(config) (stderr when trace_dir is
  // unset, so the snapshot is never silently lost).
  void FinalFlush();

  // Query dispatch, exposed for tests: exactly what a datagram
  // containing `query` gets back (already truncated to one datagram).
  std::string HandleQuery(std::string_view query);

 private:
  std::string MetricsText() const;
  std::string HealthText() const;
  std::string SpansText() const;
  std::string LatencyText() const;
  std::string UtilText() const;
  void WireUtilizationProbes();
  // Drains calls that crossed slow_call_us into the trace shard as
  // kSlowCall events (one per offending call, span tree in detail).
  void DumpSlowCalls();

  Runtime* runtime_;
  NodeConfig config_;
  core::RpcProcess* process_ = nullptr;
  const net::FaultFabric* fault_fabric_ = nullptr;
  std::unique_ptr<obs::LatencyAttributor> attributor_;
  obs::UtilizationMonitor monitor_;
  std::unique_ptr<obs::ShardWriter> shard_;
  std::unique_ptr<net::WireTapWriter> tap_;
  std::unique_ptr<net::DatagramSocket> stats_socket_;
  circus::Status status_;
  circus::Status stats_status_;
};

}  // namespace circus::rt

#endif  // SRC_RT_INTROSPECT_H_
