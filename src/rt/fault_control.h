// The faults_port control endpoint: one-datagram text commands steering
// a node's FaultFabric at runtime, mirroring the introspect protocol
// (drive it with netcat, or with circus_nemesis which is the real
// customer). Each request datagram is one FaultFabric::ApplyCommand
// line; the reply is "ok", the status line, or "err <reason>".
//
// The control socket binds on the *inner* fabric, never the fault
// fabric itself, so a nemesis can always heal a partition or lift a
// 100% loss plan — the control plane must not be subject to the chaos
// it steers.
#ifndef SRC_RT_FAULT_CONTROL_H_
#define SRC_RT_FAULT_CONTROL_H_

#include <memory>

#include "src/common/status.h"
#include "src/net/fault_fabric.h"
#include "src/net/socket.h"
#include "src/rt/runtime.h"

namespace circus::rt {

class FaultControl {
 public:
  // Binds the control endpoint on `port` of the runtime's (inner) UDP
  // fabric and serves it from `host`. Fails with kAlreadyExists when
  // the port is taken — circus_node treats that as fatal.
  static circus::StatusOr<std::unique_ptr<FaultControl>> Open(
      Runtime* runtime, sim::Host* host, net::FaultFabric* fabric,
      net::Port port);

  FaultControl(const FaultControl&) = delete;
  FaultControl& operator=(const FaultControl&) = delete;

  net::NetAddress local_address() const {
    return socket_->local_address();
  }

  // Request dispatch, exposed for tests: the reply text a control
  // datagram containing `command` gets back.
  std::string HandleCommand(std::string_view command);

 private:
  FaultControl(net::FaultFabric* fabric,
               std::unique_ptr<net::DatagramSocket> socket)
      : fabric_(fabric), socket_(std::move(socket)) {}

  net::FaultFabric* fabric_;
  std::unique_ptr<net::DatagramSocket> socket_;
};

}  // namespace circus::rt

#endif  // SRC_RT_FAULT_CONTROL_H_
