// The real-time pump for the discrete-event executor. The simulator's
// entire concurrency model is "callbacks ordered by a virtual clock";
// IoLoop replays that model against the wall clock: it runs every event
// whose virtual deadline has passed, arms a timerfd for the next pending
// deadline, and sleeps in epoll(7) until either the timer fires or a
// watched file descriptor (a real UDP socket) becomes readable. The loop
// is single-threaded by construction — coroutines, channels, and hosts
// keep exactly the semantics they have under the simulator, so every
// CLAUDE.md coroutine convention carries over unchanged.
//
// Virtual-to-wall mapping: at construction the executor's clock is
// advanced to the CLOCK_REALTIME epoch (nanoseconds since 1970), so the
// clock-seeded identifiers in the protocol layers (message call numbers,
// thread IDs) are unique across daemon restarts, exactly as a rebooted
// simulated host never reuses its predecessor's identifiers. From then
// on the loop paces the executor with CLOCK_MONOTONIC so NTP steps
// cannot run time backwards.
#ifndef SRC_RT_IO_LOOP_H_
#define SRC_RT_IO_LOOP_H_

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "src/obs/bus.h"
#include "src/obs/metrics.h"
#include "src/sim/executor.h"
#include "src/sim/time.h"

namespace circus::rt {

// Cumulative loop accounting for the utilization telemetry: wall time
// split into work (running due events + fd callbacks) and idle (blocked
// in epoll_wait). busy / (busy + idle) is the loop's utilization.
struct IoLoopStats {
  uint64_t wakeups = 0;      // epoll returns
  uint64_t fd_events = 0;    // readable fds handed to callbacks
  uint64_t timer_fires = 0;  // wakeups where the armed timerfd expired
  int64_t busy_ns = 0;       // outside epoll_wait
  int64_t idle_ns = 0;       // inside epoll_wait
};

class IoLoop {
 public:
  explicit IoLoop(sim::Executor* executor);
  IoLoop(const IoLoop&) = delete;
  IoLoop& operator=(const IoLoop&) = delete;
  ~IoLoop();

  sim::Executor& executor() { return *executor_; }

  // Registers a nonblocking fd; `on_readable` runs from the loop when it
  // becomes readable. The callback typically drains the fd and feeds a
  // sim::Channel, whose Send schedules the consumer coroutine's wakeup
  // on the executor — the loop then resumes it like any due event.
  void WatchFd(int fd, std::function<void()> on_readable);
  void UnwatchFd(int fd);

  // What the executor's clock should read right now (wall-paced).
  sim::TimePoint WallNow() const;

  // Pumps events until `done()` returns true (checked after each batch
  // of due events) or `wall_timeout` of real time elapses. Returns the
  // final done() value; an empty `done` just runs out the timeout.
  bool RunUntil(const std::function<bool()>& done,
                sim::Duration wall_timeout);
  void RunFor(sim::Duration wall_duration) { RunUntil({}, wall_duration); }

  // Makes the innermost RunUntil return after the current batch. Safe
  // only from within the loop (callbacks / executor events) — the loop
  // is single-threaded and there is no cross-thread wakeup.
  void Stop() { stop_ = true; }

  // Wires the loop to the runtime's observability hub. Each epoll
  // wakeup bumps rt.loop.wakeups / rt.loop.fd_events and, when the
  // timerfd fired, records the timer's slack (how late the loop woke
  // relative to the armed deadline) in rt.loop.timer_slack_us; with an
  // active bus each wakeup also publishes a kLoopWakeup event.
  void SetObservability(obs::EventBus* bus, obs::MetricsRegistry* metrics);

  const IoLoopStats& stats() const { return stats_; }

 private:
  void ArmTimer(sim::TimePoint wake);
  static int64_t MonotonicNanos();

  sim::Executor* executor_;
  int epoll_fd_ = -1;
  int timer_fd_ = -1;
  // Anchor of the virtual<->wall mapping.
  sim::TimePoint sim_origin_;
  int64_t mono_origin_ns_ = 0;
  std::unordered_map<int, std::function<void()>> fd_callbacks_;
  bool stop_ = false;
  obs::EventBus* bus_ = nullptr;
  obs::Counter* wakeups_ = nullptr;
  obs::Counter* fd_events_ = nullptr;
  obs::Histogram* timer_slack_us_ = nullptr;
  obs::Histogram* iter_us_ = nullptr;  // per-iteration work-phase time
  sim::TimePoint armed_wake_;  // deadline behind the armed timerfd
  IoLoopStats stats_;
};

}  // namespace circus::rt

#endif  // SRC_RT_IO_LOOP_H_
