// circus_top: live per-node utilization for a whole testbed.
//
//   circus_top [--once] [--interval ms] [--timeout ms] host:port...
//
// Polls the stats port of every listed circus_node (the same UDP
// endpoint netcat can drive): `health` for the node name, role and
// graded load, then the paged `util <offset>` query reassembled via
// the `chunk <offset> <next|end>` framing, and renders one table row
// per (node, resource) — busy share, mean/peak, queue depth, op and
// byte rates, error count, and the graded saturation level.
//
// By default the table refreshes in place every --interval ms until
// interrupted. --once prints a single snapshot and exits. Exit codes:
// 0 every node answered (at least once in live mode), 1 one or more
// nodes never answered, 2 usage error.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

namespace circus::rt {
namespace {

constexpr const char kUsage[] =
    "usage: circus_top [--once] [--interval ms] [--timeout ms] host:port...\n"
    "\n"
    "Polls the stats_port of each listed circus_node and renders a live\n"
    "per-node, per-resource utilization table (USE method: busy share,\n"
    "queue depth, op/byte rates, graded saturation level).\n"
    "\n"
    "  --once          print one snapshot and exit\n"
    "  --interval ms   refresh period in live mode (default 2000)\n"
    "  --timeout ms    per-datagram reply timeout (default 500)\n";

struct Endpoint {
  std::string spec;  // as given on the command line
  sockaddr_in addr = {};
};

// One resource row parsed out of the util exposition.
struct ResourceRow {
  double busy_pct = -1;       // circus_util_busy_pct (percent; <0 = n/a)
  double busy_mean_pct = -1;  // circus_util_busy_mean_pct
  double busy_peak_pct = -1;  // circus_util_busy_peak_pct
  double queue = 0;           // circus_util_queue
  double ops_per_sec = 0;     // circus_util_ops_per_sec
  double bytes_per_sec = 0;   // circus_util_bytes_per_sec
  double errors = 0;          // circus_util_errors_total
  int level = 0;              // circus_util_level
};

struct NodeReading {
  bool alive = false;
  std::string name;
  std::string role;
  std::string load;
  // Insertion-ordered: rows render in the order the node reported them.
  std::vector<std::pair<std::string, ResourceRow>> resources;
};

bool ParseEndpoint(const std::string& spec, Endpoint* out) {
  const size_t colon = spec.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == spec.size()) {
    return false;
  }
  const std::string host = spec.substr(0, colon);
  const long port = std::strtol(spec.c_str() + colon + 1, nullptr, 10);
  if (port <= 0 || port > 65535) {
    return false;
  }
  out->spec = spec;
  out->addr.sin_family = AF_INET;
  out->addr.sin_port = htons(static_cast<uint16_t>(port));
  if (inet_pton(AF_INET, host.c_str(), &out->addr.sin_addr) != 1) {
    return false;
  }
  return true;
}

// Sends one query datagram and waits up to timeout_ms for one reply.
bool QueryOnce(int fd, const Endpoint& endpoint, const std::string& query,
               int timeout_ms, std::string* reply) {
  if (sendto(fd, query.data(), query.size(), 0,
             reinterpret_cast<const sockaddr*>(&endpoint.addr),
             sizeof(endpoint.addr)) < 0) {
    return false;
  }
  pollfd pfd = {fd, POLLIN, 0};
  if (poll(&pfd, 1, timeout_ms) <= 0) {
    return false;
  }
  char buffer[65536];
  const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
  if (n < 0) {
    return false;
  }
  reply->assign(buffer, static_cast<size_t>(n));
  return true;
}

// Reassembles a paged query (`<query> <offset>` with chunk framing)
// into the full reply text.
bool QueryPaged(int fd, const Endpoint& endpoint, const std::string& query,
                int timeout_ms, std::string* full) {
  full->clear();
  size_t offset = 0;
  // 64 chunks * ~1.4 KiB body bounds the reply at ~90 KiB — far above
  // any real util exposition; the cap just stops a framing bug from
  // looping forever.
  for (int rounds = 0; rounds < 64; ++rounds) {
    std::string reply;
    if (!QueryOnce(fd, endpoint, query + " " + std::to_string(offset),
                   timeout_ms, &reply)) {
      return false;
    }
    size_t echoed = 0;
    char next[32] = {0};
    const size_t header_end = reply.find('\n');
    if (header_end == std::string::npos ||
        std::sscanf(reply.c_str(), "chunk %zu %31s", &echoed, next) != 2 ||
        echoed != offset) {
      return false;
    }
    full->append(reply, header_end + 1, std::string::npos);
    if (std::strcmp(next, "end") == 0) {
      return true;
    }
    offset = static_cast<size_t>(std::strtoul(next, nullptr, 10));
  }
  return false;
}

// Pulls `key value` off a health line ("role follower", "load ok").
bool HealthField(const std::string& line, const char* key, std::string* out) {
  const size_t key_len = std::strlen(key);
  if (line.compare(0, key_len, key) != 0 || line.size() <= key_len ||
      line[key_len] != ' ') {
    return false;
  }
  *out = line.substr(key_len + 1);
  return true;
}

// Parses one `circus_util_<family>{resource="<name>"} <value>` line.
bool UtilLine(const std::string& line, std::string* family,
              std::string* resource, double* value) {
  constexpr const char kPrefix[] = "circus_util_";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  if (line.compare(0, kPrefixLen, kPrefix) != 0) {
    return false;
  }
  const size_t brace = line.find("{resource=\"", kPrefixLen);
  if (brace == std::string::npos) {
    return false;
  }
  const size_t name_start = brace + std::strlen("{resource=\"");
  const size_t name_end = line.find("\"}", name_start);
  if (name_end == std::string::npos) {
    return false;
  }
  *family = line.substr(kPrefixLen, brace - kPrefixLen);
  *resource = line.substr(name_start, name_end - name_start);
  *value = std::strtod(line.c_str() + name_end + 2, nullptr);
  return true;
}

NodeReading Poll(int fd, const Endpoint& endpoint, int timeout_ms) {
  NodeReading reading;
  reading.name = endpoint.spec;

  std::string health;
  if (!QueryOnce(fd, endpoint, "health", timeout_ms, &health)) {
    return reading;
  }
  reading.alive = true;
  size_t pos = 0;
  while (pos < health.size()) {
    size_t eol = health.find('\n', pos);
    if (eol == std::string::npos) {
      eol = health.size();
    }
    const std::string line = health.substr(pos, eol - pos);
    pos = eol + 1;
    std::string value;
    if (HealthField(line, "ok", &value)) {
      reading.name = value;
    } else if (HealthField(line, "role", &value)) {
      reading.role = value;
    } else if (HealthField(line, "load", &value)) {
      reading.load = value;
    }
  }

  std::string util;
  if (!QueryPaged(fd, endpoint, "util", timeout_ms, &util)) {
    return reading;
  }
  std::map<std::string, size_t> index;
  pos = 0;
  while (pos < util.size()) {
    size_t eol = util.find('\n', pos);
    if (eol == std::string::npos) {
      eol = util.size();
    }
    const std::string line = util.substr(pos, eol - pos);
    pos = eol + 1;
    std::string family;
    std::string resource;
    double value = 0;
    if (!UtilLine(line, &family, &resource, &value)) {
      continue;
    }
    auto [it, inserted] = index.emplace(resource, reading.resources.size());
    if (inserted) {
      reading.resources.emplace_back(resource, ResourceRow{});
    }
    ResourceRow& row = reading.resources[it->second].second;
    if (family == "busy_pct") {
      row.busy_pct = value;
    } else if (family == "busy_mean_pct") {
      row.busy_mean_pct = value;
    } else if (family == "busy_peak_pct") {
      row.busy_peak_pct = value;
    } else if (family == "queue") {
      row.queue = value;
    } else if (family == "ops_per_sec") {
      row.ops_per_sec = value;
    } else if (family == "bytes_per_sec") {
      row.bytes_per_sec = value;
    } else if (family == "errors_total") {
      row.errors = value;
    } else if (family == "level") {
      row.level = static_cast<int>(value);
    }
  }
  return reading;
}

// Renders "-" for not-applicable busy percentages so cpu-style and
// queue-style resources are tellable apart at a glance.
std::string Pct(double value) {
  if (value < 0) {
    return "-";
  }
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", value);
  return buffer;
}

const char* LevelName(int level) {
  switch (level) {
    case 1:
      return "high";
    case 2:
      return "saturated";
    default:
      return "ok";
  }
}

void Render(const std::vector<Endpoint>& endpoints,
            const std::vector<NodeReading>& readings) {
  std::printf("%-14s %-12s %-14s %6s %6s %6s %8s %9s %11s %5s %s\n", "node",
              "role", "resource", "busy%", "mean%", "peak%", "queue", "ops/s",
              "bytes/s", "errs", "level");
  for (size_t i = 0; i < readings.size(); ++i) {
    const NodeReading& reading = readings[i];
    if (!reading.alive) {
      std::printf("%-14s %-12s %s\n", endpoints[i].spec.c_str(), "-",
                  "(no reply)");
      continue;
    }
    if (reading.resources.empty()) {
      std::printf("%-14s %-12s %s\n", reading.name.c_str(),
                  reading.role.c_str(), "(util query failed)");
      continue;
    }
    for (const auto& [resource, row] : reading.resources) {
      std::printf("%-14s %-12s %-14s %6s %6s %6s %8.1f %9.1f %11.1f %5.0f %s\n",
                  reading.name.c_str(), reading.role.c_str(), resource.c_str(),
                  Pct(row.busy_pct).c_str(), Pct(row.busy_mean_pct).c_str(),
                  Pct(row.busy_peak_pct).c_str(), row.queue, row.ops_per_sec,
                  row.bytes_per_sec, row.errors, LevelName(row.level));
    }
  }
}

int Main(int argc, char** argv) {
  bool once = false;
  int interval_ms = 2000;
  int timeout_ms = 500;
  std::vector<Endpoint> endpoints;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--once") == 0) {
      once = true;
    } else if (std::strcmp(argv[i], "--interval") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "circus_top: --interval needs milliseconds\n");
        return 2;
      }
      interval_ms = std::atoi(argv[++i]);
      if (interval_ms <= 0) {
        std::fprintf(stderr, "circus_top: --interval must be positive\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--timeout") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "circus_top: --timeout needs milliseconds\n");
        return 2;
      }
      timeout_ms = std::atoi(argv[++i]);
      if (timeout_ms <= 0) {
        std::fprintf(stderr, "circus_top: --timeout must be positive\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kUsage, stderr);
      return 2;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "circus_top: unknown flag %s\n", argv[i]);
      std::fputs(kUsage, stderr);
      return 2;
    } else {
      Endpoint endpoint;
      if (!ParseEndpoint(argv[i], &endpoint)) {
        std::fprintf(stderr, "circus_top: bad endpoint %s (want ip:port)\n",
                     argv[i]);
        return 2;
      }
      endpoints.push_back(endpoint);
    }
  }
  if (endpoints.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  const int fd = socket(AF_INET, SOCK_DGRAM, 0);
  if (fd < 0) {
    std::perror("circus_top: socket");
    return 1;
  }

  std::vector<bool> ever_alive(endpoints.size(), false);
  for (;;) {
    std::vector<NodeReading> readings;
    readings.reserve(endpoints.size());
    for (size_t i = 0; i < endpoints.size(); ++i) {
      readings.push_back(Poll(fd, endpoints[i], timeout_ms));
      if (readings.back().alive) {
        ever_alive[i] = true;
      }
    }
    if (!once) {
      // Home the cursor and clear below so the table repaints in place.
      std::fputs("\x1b[H\x1b[J", stdout);
    }
    const std::string refresh =
        once ? "once" : std::to_string(interval_ms) + " ms";
    std::printf("circus_top — %zu node(s), refresh %s\n", endpoints.size(),
                refresh.c_str());
    Render(endpoints, readings);
    std::fflush(stdout);
    if (once) {
      break;
    }
    usleep(static_cast<useconds_t>(interval_ms) * 1000);
  }
  close(fd);
  for (bool alive : ever_alive) {
    if (!alive) {
      return 1;
    }
  }
  return 0;
}

}  // namespace
}  // namespace circus::rt

int main(int argc, char** argv) { return circus::rt::Main(argc, argv); }
