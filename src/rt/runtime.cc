#include "src/rt/runtime.h"

namespace circus::rt {

Runtime::Runtime() : loop_(&executor_), fabric_(&loop_) {
  bus_.SetClock([this] { return executor_.now().nanos(); });
  fabric_.set_event_bus(&bus_);
  fabric_.set_metrics(&metrics_);
}

Runtime::~Runtime() {
  // Tear down in fail-stop style: crash everything so that coroutines
  // suspended on host primitives unwind and free their frames.
  for (auto& host : hosts_) {
    host->Crash();
  }
  executor_.RunUntilIdle();
}

sim::Host* Runtime::AddHost(const std::string& name,
                            net::HostAddress interface_ip) {
  const uint32_t index = next_host_index_++;
  auto host = std::make_unique<sim::Host>(&executor_, index + 1, name,
                                          sim::SyscallCostModel::WallClock());
  fabric_.AttachHost(host.get(), interface_ip);
  hosts_.push_back(std::move(host));
  return hosts_.back().get();
}

}  // namespace circus::rt
