#include "src/rt/runtime.h"

#include <unistd.h>

namespace circus::rt {

Runtime::Runtime() : loop_(&executor_), fabric_(&loop_) {
  // The IoLoop already seeded the executor clock from CLOCK_REALTIME,
  // so "executor now" IS wall time here — the same clock seam the
  // simulated World fills with virtual time.
  bus_.SetClock([this] { return executor_.now().nanos(); });
  metrics_.SetClock([this] { return executor_.now().nanos(); });
  // Wall-clock nanoseconds alone could collide across two processes
  // started within one scheduler tick; folding in the pid makes the
  // incarnation unique per OS process on one machine.
  incarnation_ = static_cast<uint64_t>(executor_.now().nanos()) ^
                 (static_cast<uint64_t>(getpid()) << 48);
  if (incarnation_ == 0) {
    incarnation_ = 1;
  }
  bus_.SetIncarnation(incarnation_);
  loop_.SetObservability(&bus_, &metrics_);
  fabric_.set_event_bus(&bus_);
  fabric_.set_metrics(&metrics_);
}

Runtime::~Runtime() {
  // Tear down in fail-stop style: crash everything so that coroutines
  // suspended on host primitives unwind and free their frames.
  for (auto& host : hosts_) {
    host->Crash();
  }
  executor_.RunUntilIdle();
}

sim::Host* Runtime::AddHost(const std::string& name,
                            net::HostAddress interface_ip) {
  const uint32_t index = next_host_index_++;
  auto host = std::make_unique<sim::Host>(&executor_, index + 1, name,
                                          sim::SyscallCostModel::WallClock());
  fabric_.AttachHost(host.get(), interface_ip);
  hosts_.push_back(std::move(host));
  return hosts_.back().get();
}

}  // namespace circus::rt
