// A net::Fabric backed by real AF_INET UDP sockets. Host addresses are
// real IPv4 addresses in host byte order (127.0.0.1 == 0x7F000001), so
// the protocol layers' NetAddress values are the actual wire addresses.
// Datagrams take the kernel's UDP path; loss, duplication, and delay are
// whatever the real network provides (there is no fault injection here —
// that is the simulator's job).
//
// Multicast (class-D destinations) is emulated by fanning a send out to
// every locally joined socket's unicast address. That matches the
// simulated Network's delivery semantics exactly for single-machine
// (loopback) runtimes; cross-host IP multicast is an open item in
// ROADMAP.md.
#ifndef SRC_RT_UDP_FABRIC_H_
#define SRC_RT_UDP_FABRIC_H_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>

#include "src/net/fabric.h"
#include "src/net/socket.h"
#include "src/rt/io_loop.h"

namespace circus::rt {

struct UdpFabricStats {
  uint64_t packets_sent = 0;       // send operations (multicast counts 1)
  uint64_t packets_delivered = 0;  // datagrams read off real sockets
  uint64_t bytes_sent = 0;         // payload bytes offered to sendto
  uint64_t bytes_delivered = 0;    // payload bytes read off real sockets
  uint64_t send_errors = 0;        // sendto failures (dropped, like UDP)
  uint64_t backpressure = 0;       // of those: EAGAIN/ENOBUFS (full bufs)
  uint64_t truncated = 0;          // inbound datagrams over the MTU
};

class UdpFabric : public net::Fabric {
 public:
  explicit UdpFabric(IoLoop* loop) : loop_(loop) {}
  ~UdpFabric() override;

  // Gives `host` its interface address (a real local IP, host byte
  // order). Several hosts may share one interface — e.g. a whole troupe
  // on 127.0.0.1 — because ports, not addresses, distinguish sockets.
  void AttachHost(sim::Host* host, net::HostAddress interface_ip);
  net::HostAddress AddressOfHost(sim::Host::HostId id) const override;

  const UdpFabricStats& stats() const { return stats_; }

  // Datagrams sitting in bound sockets' receive queues, fabric-wide —
  // the recv-backlog side of the utilization telemetry.
  size_t TotalReceiveBacklog() const;

 protected:
  circus::StatusOr<net::NetAddress> Bind(net::DatagramSocket* socket,
                                         net::Port port) override;
  void Unbind(net::DatagramSocket* socket) override;
  void Transmit(sim::Host* sender, net::Datagram datagram) override;
  void JoinGroup(net::HostAddress group,
                 net::DatagramSocket* socket) override;
  void LeaveGroup(net::HostAddress group,
                  net::DatagramSocket* socket) override;

 private:
  struct Binding {
    int fd = -1;
    net::NetAddress local;
  };

  // Opens + binds a nonblocking UDP fd on (ip, port); port 0 is resolved
  // from the fabric's ephemeral range, mirroring the simulated Network's
  // allocator (the OS allocator would ignore set_ephemeral_port_range).
  circus::StatusOr<Binding> OpenAndBind(net::HostAddress ip, net::Port port);
  void DrainFd(net::DatagramSocket* socket);

  IoLoop* loop_;
  std::unordered_map<sim::Host::HostId, net::HostAddress> host_ip_;
  std::unordered_map<net::DatagramSocket*, Binding> bindings_;
  // Socket lookup by local address, for the sender-side fd resolution.
  std::unordered_map<net::NetAddress, net::DatagramSocket*,
                     net::NetAddressHash>
      by_address_;
  std::map<net::HostAddress, std::set<net::DatagramSocket*>> groups_;
  net::Port next_ephemeral_port_ = 0;  // 0: start of configured range
  UdpFabricStats stats_;
};

}  // namespace circus::rt

#endif  // SRC_RT_UDP_FABRIC_H_
