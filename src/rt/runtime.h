// Runtime: one real-time Circus node — an executor pumped by an IoLoop,
// a set of hosts with the wall-clock cost model, and a UdpFabric over
// real sockets. The rt analogue of net::World; tests and the circus_node
// daemon build whatever topology they need. "Hosts" here are logical
// failure domains (a crash reaps that host's coroutines exactly as in
// the simulator); on a single machine they all share one kernel, which
// is the loopback-testbed configuration.
#ifndef SRC_RT_RUNTIME_H_
#define SRC_RT_RUNTIME_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/bus.h"
#include "src/obs/metrics.h"
#include "src/rt/io_loop.h"
#include "src/rt/udp_fabric.h"
#include "src/sim/executor.h"
#include "src/sim/host.h"

namespace circus::rt {

inline constexpr net::HostAddress kLoopbackAddress = 0x7F000001;  // 127.0.0.1

class Runtime {
 public:
  Runtime();
  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;
  // Crashes every host and drains the executor so that all protocol
  // coroutines unwind before members are destroyed (same teardown
  // discipline as net::World).
  ~Runtime();

  sim::Executor& executor() { return executor_; }
  IoLoop& loop() { return loop_; }
  UdpFabric& fabric() { return fabric_; }
  obs::EventBus& bus() { return bus_; }
  obs::MetricsRegistry& metrics() { return metrics_; }

  // This OS process's incarnation: a fresh nonzero value per Runtime,
  // derived from the wall clock and pid. The bus stamps it into every
  // event, so merged multi-process traces (and their consumers) can
  // tell a restarted node from its predecessor at the same address.
  uint64_t incarnation() const { return incarnation_; }

  // Creates a host bound to a real local interface (loopback by
  // default). Hosts use SyscallCostModel::WallClock(): real syscalls
  // cost real time, so no simulated CPU charges on top.
  sim::Host* AddHost(const std::string& name,
                     net::HostAddress interface_ip = kLoopbackAddress);

  sim::Host* host(size_t index) { return hosts_[index].get(); }
  size_t host_count() const { return hosts_.size(); }

  // Convenience wrappers over the loop.
  bool RunUntil(const std::function<bool()>& done,
                sim::Duration wall_timeout) {
    return loop_.RunUntil(done, wall_timeout);
  }
  void RunFor(sim::Duration wall_duration) { loop_.RunFor(wall_duration); }
  sim::TimePoint now() const { return executor_.now(); }

 private:
  // The hub is declared before the fabric and hosts so that protocol
  // teardown (which may still publish) never outlives it.
  obs::EventBus bus_;
  obs::MetricsRegistry metrics_;
  sim::Executor executor_;
  IoLoop loop_;
  UdpFabric fabric_;
  std::vector<std::unique_ptr<sim::Host>> hosts_;
  uint32_t next_host_index_ = 0;
  uint64_t incarnation_ = 0;
};

}  // namespace circus::rt

#endif  // SRC_RT_RUNTIME_H_
