// circus_wire: decodes and audits Fabric packet captures against the
// Section 4.2 paired-message protocol rules.
//
//   circus_wire [options] capture.tap.jsonl...
//     --member A.B.C.D:P    troupe member address (repeatable; enables
//                           the Section 4.3.3 member-to-member check)
//     --annotate IN.json    circus_trace_merge output to annotate: every
//                           "call" span gains wire_packets / wire_bytes /
//                           wire_data / wire_retransmits / wire_acks /
//                           wire_probes args counting the tapped send
//                           records inside its time window
//     -o OUT.json           annotated trace output (default
//                           wire.trace.json)
//     --no-conversations    omit the per-conversation rollup lines
//
// Captures come from circus_node (tap_dir=) or World::CapturePackets.
// The audit report goes to stdout. Exit codes: 0 clean, 1 the auditor
// found protocol violations, 2 usage/input error.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "src/msg/paired_endpoint.h"
#include "src/obs/export.h"
#include "src/obs/json.h"
#include "src/obs/wire.h"
#include "src/rt/node_config.h"

namespace circus::rt {
namespace {

// One classified send record, for span annotation.
struct SendSample {
  int64_t time_ns = 0;
  uint64_t bytes = 0;
  bool data = false;
  bool retransmit = false;
  bool ack = false;
  bool probe = false;
};

std::vector<SendSample> ClassifySends(
    const std::vector<obs::wire::WireSegment>& decoded) {
  std::vector<SendSample> sends;
  std::set<std::tuple<net::NetAddress, net::NetAddress, int, uint32_t,
                      uint8_t>>
      seen;
  for (const obs::wire::WireSegment& ws : decoded) {
    if (!ws.packet.send) {
      continue;
    }
    SendSample s;
    s.time_ns = ws.packet.time_ns;
    s.bytes = ws.packet.payload.size();
    if (ws.segment.ack) {
      s.ack = true;
    } else if (ws.segment.is_probe()) {
      s.probe = true;
    } else {
      const bool first =
          seen.insert({ws.node, ws.remote, static_cast<int>(ws.segment.type),
                       ws.segment.call_number, ws.segment.segment_number})
              .second;
      s.data = first;
      s.retransmit = !first;
    }
    sends.push_back(s);
  }
  std::sort(sends.begin(), sends.end(),
            [](const SendSample& a, const SendSample& b) {
              return a.time_ns < b.time_ns;
            });
  return sends;
}

// Rebuilds one "call" span event with wire-cost args appended. The
// event schema is our own exporter's (obs::ToChromeTrace), so copying
// the known keys is lossless.
obs::json::Value AnnotateSpan(const obs::json::Value& event,
                              const std::vector<SendSample>& sends) {
  const obs::json::Value* ts = event.Find("ts");
  const obs::json::Value* dur = event.Find("dur");
  obs::json::Value out = obs::json::Value::Object();
  for (const char* key : {"name", "ph", "ts", "dur", "pid", "tid"}) {
    if (const obs::json::Value* v = event.Find(key)) {
      out.Set(key, *v);
    }
  }
  obs::json::Value args = obs::json::Value::Object();
  if (const obs::json::Value* a = event.Find("args")) {
    args = *a;
  }
  uint64_t packets = 0, bytes = 0, data = 0, retx = 0, acks = 0, probes = 0;
  if (ts != nullptr && dur != nullptr) {
    const int64_t begin_ns = static_cast<int64_t>(ts->as_double() * 1000.0);
    const int64_t end_ns =
        begin_ns + static_cast<int64_t>(dur->as_double() * 1000.0);
    auto it = std::lower_bound(sends.begin(), sends.end(), begin_ns,
                               [](const SendSample& s, int64_t t) {
                                 return s.time_ns < t;
                               });
    for (; it != sends.end() && it->time_ns <= end_ns; ++it) {
      ++packets;
      bytes += it->bytes;
      data += it->data ? 1 : 0;
      retx += it->retransmit ? 1 : 0;
      acks += it->ack ? 1 : 0;
      probes += it->probe ? 1 : 0;
    }
  }
  args.Set("wire_packets", packets);
  args.Set("wire_bytes", bytes);
  args.Set("wire_data", data);
  args.Set("wire_retransmits", retx);
  args.Set("wire_acks", acks);
  args.Set("wire_probes", probes);
  out.Set("args", std::move(args));
  return out;
}

int Annotate(const std::string& in_path, const std::string& out_path,
             const std::vector<SendSample>& sends) {
  std::ifstream in(in_path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "circus_wire: cannot open %s\n", in_path.c_str());
    return 2;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  circus::StatusOr<obs::json::Value> parsed = obs::json::Parse(text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "circus_wire: %s: %s\n", in_path.c_str(),
                 parsed.status().ToString().c_str());
    return 2;
  }
  const obs::json::Value* events = parsed->Find("traceEvents");
  if (events == nullptr ||
      events->type() != obs::json::Value::Type::kArray) {
    std::fprintf(stderr, "circus_wire: %s has no traceEvents array\n",
                 in_path.c_str());
    return 2;
  }
  obs::json::Value out_events = obs::json::Value::Array();
  size_t annotated = 0;
  for (const obs::json::Value& event : events->items()) {
    const obs::json::Value* ph = event.Find("ph");
    const obs::json::Value* name = event.Find("name");
    const bool call_span =
        ph != nullptr && ph->as_string() == "X" && name != nullptr &&
        name->as_string().rfind("call ", 0) == 0;
    if (!call_span) {
      out_events.Append(event);
      continue;
    }
    out_events.Append(AnnotateSpan(event, sends));
    ++annotated;
  }
  obs::json::Value root = obs::json::Value::Object();
  root.Set("traceEvents", std::move(out_events));
  if (const obs::json::Value* unit = parsed->Find("displayTimeUnit")) {
    root.Set("displayTimeUnit", *unit);
  }
  circus::Status written = obs::WriteStringToFile(out_path, root.Dump());
  if (!written.ok()) {
    std::fprintf(stderr, "circus_wire: %s\n", written.ToString().c_str());
    return 2;
  }
  std::printf("annotated %zu call span(s) -> %s\n", annotated,
              out_path.c_str());
  return 0;
}

int Main(int argc, char** argv) {
  constexpr char kUsage[] =
      "usage: circus_wire [--member addr]... [--annotate merged.json "
      "[-o out.json]] [--no-conversations] capture.tap.jsonl...\n";
  std::vector<std::string> capture_paths;
  std::string annotate_path;
  std::string out_path = "wire.trace.json";
  bool conversations = true;
  obs::wire::AuditOptions options =
      obs::wire::AuditOptionsFor(msg::EndpointOptions{});
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--member") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "circus_wire: --member needs an address\n");
        return 2;
      }
      circus::StatusOr<net::NetAddress> addr = ParseNetAddress(argv[++i]);
      if (!addr.ok()) {
        std::fprintf(stderr, "circus_wire: %s\n",
                     addr.status().ToString().c_str());
        return 2;
      }
      options.member_addresses.push_back(*addr);
    } else if (std::strcmp(argv[i], "--annotate") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "circus_wire: --annotate needs a path\n");
        return 2;
      }
      annotate_path = argv[++i];
    } else if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "circus_wire: -o needs a path\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--no-conversations") == 0) {
      conversations = false;
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      std::fputs(kUsage, stderr);
      return 2;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "circus_wire: unknown flag %s\n", argv[i]);
      std::fputs(kUsage, stderr);
      return 2;
    } else {
      capture_paths.push_back(argv[i]);
    }
  }
  if (capture_paths.empty()) {
    std::fputs(kUsage, stderr);
    return 2;
  }

  std::vector<obs::wire::WireSegment> decoded;
  obs::wire::WireAuditor auditor(options);
  for (const std::string& path : capture_paths) {
    circus::StatusOr<net::WireCaptureFile> capture =
        net::ReadWireCaptureFile(path);
    if (!capture.ok()) {
      std::fprintf(stderr, "circus_wire: %s: %s\n", path.c_str(),
                   capture.status().ToString().c_str());
      return 2;
    }
    if (!annotate_path.empty()) {
      std::vector<obs::wire::WireSegment> part =
          obs::wire::DecodeRecords(capture->records, nullptr);
      decoded.insert(decoded.end(), part.begin(), part.end());
    }
    auditor.AddCapture(*capture);
  }
  const obs::wire::AuditReport report = auditor.Finish();
  std::fputs(report.Render(/*max_violations=*/50, conversations).c_str(),
             stdout);

  if (!annotate_path.empty()) {
    const int rc = Annotate(annotate_path, out_path, ClassifySends(decoded));
    if (rc != 0) {
      return rc;
    }
  }
  return report.violations.empty() ? 0 : 1;
}

}  // namespace
}  // namespace circus::rt

int main(int argc, char** argv) { return circus::rt::Main(argc, argv); }
