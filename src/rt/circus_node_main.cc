// circus_node: one Circus node over real UDP. Reads a small key=value
// config (see node_config.h) and runs one role:
//
//   ringmaster  serves the binding interface on its listen address;
//   member      exports the configured interface, joins the troupe via
//               the Section 6.4.1 get_state + add_troupe_member recipe,
//               then serves calls;
//   client      imports the troupe by name and issues replicated calls,
//               reporting wall-clock latency (the Table 4.1 shape).
//
// Every node is observable while it runs (DESIGN.md Section 6): with
// stats_port= it answers metrics/health/spans datagrams, with trace_dir=
// it streams its event shard to disk for circus_trace_merge. SIGINT and
// SIGTERM shut the node down gracefully — final metrics snapshot and
// trace shard flushed before exit.
//
// A loopback testbed is a handful of circus_node processes sharing
// 127.0.0.1; a LAN deployment is the same configs with real addresses.
#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/binding/client.h"
#include "src/binding/ringmaster.h"
#include "src/common/check.h"
#include "src/common/log.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/rt/introspect.h"
#include "src/rt/node_config.h"
#include "src/rt/runtime.h"

namespace circus::rt {
namespace {

// The Ringmaster's binding interface is the first module its process
// exports, so its module number is the same on every node.
constexpr core::ModuleNumber kRingmasterModule = 0;

core::Troupe BootstrapRingmasterTroupe(net::NetAddress address) {
  core::Troupe troupe;
  troupe.id = binding::kRingmasterTroupeId;
  troupe.members.push_back(
      core::ModuleAddress{address, kRingmasterModule});
  return troupe;
}

sim::Duration ServeBudget(const NodeConfig& config) {
  return config.run_seconds > 0 ? sim::Duration::Seconds(config.run_seconds)
                                : sim::Duration::Seconds(1 << 30);
}

// ------------------------------------------------------------ shutdown --
// SIGINT/SIGTERM request a graceful stop. The handler only sets a flag
// and pokes a self-pipe the IoLoop watches, so a signal arriving while
// the loop is blocked in epoll_wait wakes it immediately (no SA_RESTART,
// and no race between the predicate check and the epoll sleep).

volatile std::sig_atomic_t g_shutdown = 0;
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  g_shutdown = 1;
  if (g_signal_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &byte, 1);
  }
}

bool ShutdownRequested() { return g_shutdown != 0; }

void InstallShutdownHandling(Runtime& runtime) {
  CIRCUS_CHECK(pipe2(g_signal_pipe, O_NONBLOCK | O_CLOEXEC) == 0);
  runtime.loop().WatchFd(g_signal_pipe[0], [] {
    char buf[16];
    while (read(g_signal_pipe[0], buf, sizeof(buf)) > 0) {
    }
  });
  struct sigaction sa {};
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: epoll_wait must EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

// ------------------------------------------------------------- logging --
// rt-aware sink: wall-clock timestamps (the executor clock IS wall time
// here, seeded from CLOCK_REALTIME) and a role/host:port prefix so
// interleaved stderr from a testbed's nodes stays attributable.

int64_t WallRealtimeNanos() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void InstallLogSink(const NodeConfig& config) {
  const std::string prefix =
      std::string(config.RoleName()) + "/" + config.listen.ToString();
  SetLogSink([prefix](LogLevel level, int64_t time_ns,
                      const std::string& message) {
    if (time_ns < 0) {
      time_ns = WallRealtimeNanos();  // logged outside the loop
    }
    const time_t seconds = static_cast<time_t>(time_ns / 1000000000);
    tm utc{};
    gmtime_r(&seconds, &utc);
    char clock[16];
    strftime(clock, sizeof(clock), "%H:%M:%S", &utc);
    static const char* kLetters = "TDIWE";
    std::fprintf(stderr, "[%c %s.%06ld %s] %s\n",
                 kLetters[static_cast<int>(level)], clock,
                 static_cast<long>((time_ns % 1000000000) / 1000),
                 prefix.c_str(), message.c_str());
  });
}

#define NODE_LOG(runtime) \
  CIRCUS_LOG_AT(LogLevel::kInfo, (runtime).now().nanos())

// Common epilogue: final metrics snapshot + trace shard, then report.
int FinishNode(Runtime& runtime, NodeObservability& node_obs, int rc) {
  node_obs.FinalFlush();
  if (!node_obs.status().ok()) {
    CIRCUS_LOG_AT(LogLevel::kWarning, runtime.now().nanos())
        << "observability degraded: " << node_obs.status().ToString();
  }
  NODE_LOG(runtime) << (ShutdownRequested() ? "shutdown (signal)"
                                            : "shutdown (budget)");
  return rc;
}

// --------------------------------------------------------------- roles --

int RunRingmaster(const NodeConfig& config) {
  Runtime runtime;
  InstallShutdownHandling(runtime);
  sim::Host* host = runtime.AddHost("ringmaster", config.listen.host);
  NodeObservability node_obs(&runtime, host, config);
  core::RpcProcess process(&runtime.fabric(), host, config.listen.port);
  node_obs.SetProcess(&process);
  binding::RingmasterServer server(&process);
  server.BootstrapSelf(BootstrapRingmasterTroupe(config.listen));
  NODE_LOG(runtime) << "ringmaster on " << config.listen.ToString();
  runtime.RunUntil(ShutdownRequested, ServeBudget(config));
  return FinishNode(runtime, node_obs, 0);
}

int RunMember(const NodeConfig& config) {
  Runtime runtime;
  InstallShutdownHandling(runtime);
  sim::Host* host = runtime.AddHost("member", config.listen.host);
  NodeObservability node_obs(&runtime, host, config);
  core::RpcProcess process(&runtime.fabric(), host, config.listen.port);
  node_obs.SetProcess(&process);
  binding::BindingClient binding(
      &process, BootstrapRingmasterTroupe(config.ringmaster));
  binding::BindingCache cache(&binding);
  process.SetClientTroupeResolver(cache.MakeResolver());

  // The exported module: an echo procedure (0) plus a counter
  // procedure (1) whose value is the module state — deterministic, so
  // replicas stay aligned and get_state can seed a joiner.
  auto counter = std::make_shared<int32_t>(0);
  const core::ModuleNumber module =
      process.ExportModule(config.interface_name);
  process.ExportProcedure(
      module, 0,
      [](core::ServerCallContext&, const circus::Bytes& args)
          -> sim::Task<circus::StatusOr<circus::Bytes>> {
        co_return circus::Bytes(args);
      });
  process.ExportProcedure(
      module, 1,
      [counter](core::ServerCallContext&, const circus::Bytes&)
          -> sim::Task<circus::StatusOr<circus::Bytes>> {
        marshal::Writer w;
        w.WriteI32(++*counter);
        co_return w.Take();
      });
  process.SetStateProvider(module, [counter] {
    marshal::Writer w;
    w.WriteI32(*counter);
    return w.Take();
  });

  bool joined = false;
  host->Spawn([](core::RpcProcess* p, core::ModuleNumber m,
                 binding::BindingClient* b, std::string name,
                 std::shared_ptr<int32_t> state,
                 bool* done) -> sim::Task<void> {
    // Hoisted: a capturing lambda must not become a std::function inside
    // the co_await statement (CLAUDE.md rule 1).
    std::function<void(const circus::Bytes&)> accept_state =
        [state](const circus::Bytes& bytes) {
          marshal::Reader r(bytes);
          *state = r.ReadI32();
        };
    circus::Status status =
        co_await binding::JoinTroupe(p, m, b, name, accept_state);
    if (!status.ok()) {
      CIRCUS_LOG(LogLevel::kWarning)
          << "join failed: " << status.ToString();
    }
    *done = status.ok();
  }(&process, module, &binding, config.troupe, counter, &joined));

  if (!runtime.RunUntil(
          [&joined] { return joined || ShutdownRequested(); },
          sim::Duration::Seconds(30)) ||
      !joined) {
    CIRCUS_LOG_AT(LogLevel::kError, runtime.now().nanos())
        << "could not join troupe '" << config.troupe << "'";
    return FinishNode(runtime, node_obs, 1);
  }
  NODE_LOG(runtime) << "member of '" << config.troupe << "' on "
                    << config.listen.ToString();
  runtime.RunUntil(ShutdownRequested, ServeBudget(config));
  return FinishNode(runtime, node_obs, 0);
}

int RunClient(const NodeConfig& config) {
  Runtime runtime;
  InstallShutdownHandling(runtime);
  sim::Host* host = runtime.AddHost("client", config.listen.host);
  NodeObservability node_obs(&runtime, host, config);
  core::RpcProcess process(&runtime.fabric(), host, config.listen.port);
  node_obs.SetProcess(&process);
  binding::BindingClient binding(
      &process, BootstrapRingmasterTroupe(config.ringmaster));
  binding::BindingCache cache(&binding);
  process.SetClientTroupeResolver(cache.MakeResolver());

  struct Progress {
    std::vector<double> latencies_ms;
    bool finished = false;
    bool ok = true;
  };
  auto progress = std::make_shared<Progress>();
  host->Spawn([](Runtime* rt, core::RpcProcess* p, binding::BindingCache* c,
                 NodeConfig cfg,
                 std::shared_ptr<Progress> out) -> sim::Task<void> {
    const core::ThreadId thread = p->NewRootThread();
    const circus::Bytes args(static_cast<size_t>(cfg.payload), 0x5A);
    for (int i = 0; i < cfg.calls && g_shutdown == 0; ++i) {
      const sim::TimePoint start = rt->loop().WallNow();
      circus::StatusOr<circus::Bytes> result = co_await c->CallByName(
          p, thread, cfg.troupe, /*procedure=*/0, args);
      if (!result.ok()) {
        CIRCUS_LOG(LogLevel::kError)
            << "call " << i << " failed: "
            << result.status().ToString();
        out->ok = false;
        break;
      }
      out->latencies_ms.push_back(
          (rt->loop().WallNow() - start).ToMillisF());
    }
    out->finished = true;
  }(&runtime, &process, &cache, config, progress));

  runtime.RunUntil(
      [progress] { return progress->finished || ShutdownRequested(); },
      sim::Duration::Seconds(60 + config.calls));
  // An operator stop (SIGINT/SIGTERM) mid-run is a graceful exit, not a
  // failure: report whatever completed and flush as usual.
  const bool stopped_early = !progress->finished && ShutdownRequested();
  if (!stopped_early &&
      (!progress->finished || !progress->ok ||
       progress->latencies_ms.empty())) {
    CIRCUS_LOG_AT(LogLevel::kError, runtime.now().nanos())
        << "client run failed";
    return FinishNode(runtime, node_obs, 1);
  }
  if (progress->latencies_ms.empty()) {
    return FinishNode(runtime, node_obs, 0);
  }
  double total = 0;
  double min = progress->latencies_ms.front();
  double max = min;
  for (double ms : progress->latencies_ms) {
    total += ms;
    min = ms < min ? ms : min;
    max = ms > max ? ms : max;
  }
  std::printf("calls=%zu mean_ms=%.3f min_ms=%.3f max_ms=%.3f\n",
              progress->latencies_ms.size(),
              total / progress->latencies_ms.size(), min, max);
  return FinishNode(runtime, node_obs, 0);
}

int Main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: circus_node <config-file>\n");
    return 2;
  }
  circus::StatusOr<NodeConfig> config = LoadNodeConfig(argv[1]);
  if (!config.ok()) {
    std::fprintf(stderr, "circus_node: %s\n",
                 config.status().ToString().c_str());
    return 2;
  }
  InstallLogSink(*config);
  if (GetLogLevel() > LogLevel::kInfo) {
    SetLogLevel(LogLevel::kInfo);  // a daemon should say what it is doing
  }
  switch (config->role) {
    case NodeConfig::Role::kRingmaster:
      return RunRingmaster(*config);
    case NodeConfig::Role::kMember:
      return RunMember(*config);
    case NodeConfig::Role::kClient:
      return RunClient(*config);
  }
  return 2;
}

}  // namespace
}  // namespace circus::rt

int main(int argc, char** argv) { return circus::rt::Main(argc, argv); }
