// circus_node: one Circus node over real UDP. Reads a small key=value
// config (see node_config.h) and runs one role:
//
//   ringmaster  serves the binding interface on its listen address;
//   member      exports the configured interface, joins the troupe via
//               the Section 6.4.1 get_state + add_troupe_member recipe,
//               then serves calls;
//   client      imports the troupe by name and issues replicated calls,
//               reporting wall-clock latency (the Table 4.1 shape).
//
// A loopback testbed is a handful of circus_node processes sharing
// 127.0.0.1; a LAN deployment is the same configs with real addresses.
#include <cstdio>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/binding/client.h"
#include "src/binding/ringmaster.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/rt/node_config.h"
#include "src/rt/runtime.h"

namespace circus::rt {
namespace {

// The Ringmaster's binding interface is the first module its process
// exports, so its module number is the same on every node.
constexpr core::ModuleNumber kRingmasterModule = 0;

core::Troupe BootstrapRingmasterTroupe(net::NetAddress address) {
  core::Troupe troupe;
  troupe.id = binding::kRingmasterTroupeId;
  troupe.members.push_back(
      core::ModuleAddress{address, kRingmasterModule});
  return troupe;
}

sim::Duration ServeBudget(const NodeConfig& config) {
  return config.run_seconds > 0 ? sim::Duration::Seconds(config.run_seconds)
                                : sim::Duration::Seconds(1 << 30);
}

int RunRingmaster(const NodeConfig& config) {
  Runtime runtime;
  sim::Host* host = runtime.AddHost("ringmaster", config.listen.host);
  core::RpcProcess process(&runtime.fabric(), host, config.listen.port);
  binding::RingmasterServer server(&process);
  server.BootstrapSelf(BootstrapRingmasterTroupe(config.listen));
  std::fprintf(stderr, "circus_node: ringmaster on %s\n",
               config.listen.ToString().c_str());
  runtime.RunFor(ServeBudget(config));
  return 0;
}

int RunMember(const NodeConfig& config) {
  Runtime runtime;
  sim::Host* host = runtime.AddHost("member", config.listen.host);
  core::RpcProcess process(&runtime.fabric(), host, config.listen.port);
  binding::BindingClient binding(
      &process, BootstrapRingmasterTroupe(config.ringmaster));
  binding::BindingCache cache(&binding);
  process.SetClientTroupeResolver(cache.MakeResolver());

  // The exported module: an echo procedure (0) plus a counter
  // procedure (1) whose value is the module state — deterministic, so
  // replicas stay aligned and get_state can seed a joiner.
  auto counter = std::make_shared<int32_t>(0);
  const core::ModuleNumber module =
      process.ExportModule(config.interface_name);
  process.ExportProcedure(
      module, 0,
      [](core::ServerCallContext&, const circus::Bytes& args)
          -> sim::Task<circus::StatusOr<circus::Bytes>> {
        co_return circus::Bytes(args);
      });
  process.ExportProcedure(
      module, 1,
      [counter](core::ServerCallContext&, const circus::Bytes&)
          -> sim::Task<circus::StatusOr<circus::Bytes>> {
        marshal::Writer w;
        w.WriteI32(++*counter);
        co_return w.Take();
      });
  process.SetStateProvider(module, [counter] {
    marshal::Writer w;
    w.WriteI32(*counter);
    return w.Take();
  });

  bool joined = false;
  host->Spawn([](core::RpcProcess* p, core::ModuleNumber m,
                 binding::BindingClient* b, std::string name,
                 std::shared_ptr<int32_t> state,
                 bool* done) -> sim::Task<void> {
    // Hoisted: a capturing lambda must not become a std::function inside
    // the co_await statement (CLAUDE.md rule 1).
    std::function<void(const circus::Bytes&)> accept_state =
        [state](const circus::Bytes& bytes) {
          marshal::Reader r(bytes);
          *state = r.ReadI32();
        };
    circus::Status status =
        co_await binding::JoinTroupe(p, m, b, name, accept_state);
    if (!status.ok()) {
      std::fprintf(stderr, "circus_node: join failed: %s\n",
                   status.ToString().c_str());
    }
    *done = status.ok();
  }(&process, module, &binding, config.troupe, counter, &joined));

  if (!runtime.RunUntil([&joined] { return joined; },
                        sim::Duration::Seconds(30))) {
    std::fprintf(stderr, "circus_node: could not join troupe '%s'\n",
                 config.troupe.c_str());
    return 1;
  }
  std::fprintf(stderr, "circus_node: member of '%s' on %s\n",
               config.troupe.c_str(), config.listen.ToString().c_str());
  runtime.RunFor(ServeBudget(config));
  return 0;
}

int RunClient(const NodeConfig& config) {
  Runtime runtime;
  sim::Host* host = runtime.AddHost("client", config.listen.host);
  core::RpcProcess process(&runtime.fabric(), host, config.listen.port);
  binding::BindingClient binding(
      &process, BootstrapRingmasterTroupe(config.ringmaster));
  binding::BindingCache cache(&binding);
  process.SetClientTroupeResolver(cache.MakeResolver());

  struct Progress {
    std::vector<double> latencies_ms;
    bool finished = false;
    bool ok = true;
  };
  auto progress = std::make_shared<Progress>();
  host->Spawn([](Runtime* rt, core::RpcProcess* p, binding::BindingCache* c,
                 NodeConfig cfg,
                 std::shared_ptr<Progress> out) -> sim::Task<void> {
    const core::ThreadId thread = p->NewRootThread();
    const circus::Bytes args(static_cast<size_t>(cfg.payload), 0x5A);
    for (int i = 0; i < cfg.calls; ++i) {
      const sim::TimePoint start = rt->loop().WallNow();
      circus::StatusOr<circus::Bytes> result = co_await c->CallByName(
          p, thread, cfg.troupe, /*procedure=*/0, args);
      if (!result.ok()) {
        std::fprintf(stderr, "circus_node: call %d failed: %s\n", i,
                     result.status().ToString().c_str());
        out->ok = false;
        break;
      }
      out->latencies_ms.push_back(
          (rt->loop().WallNow() - start).ToMillisF());
    }
    out->finished = true;
  }(&runtime, &process, &cache, config, progress));

  runtime.RunUntil([progress] { return progress->finished; },
                   sim::Duration::Seconds(60 + config.calls));
  if (!progress->finished || !progress->ok ||
      progress->latencies_ms.empty()) {
    std::fprintf(stderr, "circus_node: client run failed\n");
    return 1;
  }
  double total = 0;
  double min = progress->latencies_ms.front();
  double max = min;
  for (double ms : progress->latencies_ms) {
    total += ms;
    min = ms < min ? ms : min;
    max = ms > max ? ms : max;
  }
  std::printf("calls=%zu mean_ms=%.3f min_ms=%.3f max_ms=%.3f\n",
              progress->latencies_ms.size(),
              total / progress->latencies_ms.size(), min, max);
  return 0;
}

int Main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: circus_node <config-file>\n");
    return 2;
  }
  circus::StatusOr<NodeConfig> config = LoadNodeConfig(argv[1]);
  if (!config.ok()) {
    std::fprintf(stderr, "circus_node: %s\n",
                 config.status().ToString().c_str());
    return 2;
  }
  switch (config->role) {
    case NodeConfig::Role::kRingmaster:
      return RunRingmaster(*config);
    case NodeConfig::Role::kMember:
      return RunMember(*config);
    case NodeConfig::Role::kClient:
      return RunClient(*config);
  }
  return 2;
}

}  // namespace
}  // namespace circus::rt

int main(int argc, char** argv) { return circus::rt::Main(argc, argv); }
