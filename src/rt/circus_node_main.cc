// circus_node: one Circus node over real UDP. Reads a small key=value
// config (see node_config.h) and runs one role:
//
//   ringmaster  serves the binding interface on its listen address;
//   member      exports the configured interface, joins the troupe via
//               the Section 6.4.1 get_state + add_troupe_member recipe,
//               then serves calls;
//   client      imports the troupe by name and issues replicated calls,
//               reporting wall-clock latency (the Table 4.1 shape).
//
// Every node is observable while it runs (DESIGN.md Section 6): with
// stats_port= it answers metrics/health/spans/latency datagrams, with
// trace_dir= it streams its event shard to disk for circus_trace_merge,
// and with slow_call_us= it dumps every call slower than the threshold
// to the shard as a slow_call event. SIGINT and SIGTERM shut the node
// down gracefully — final metrics snapshot and trace shard flushed
// before exit.
//
// A loopback testbed is a handful of circus_node processes sharing
// 127.0.0.1; a LAN deployment is the same configs with real addresses.
#include <fcntl.h>
#include <time.h>
#include <unistd.h>

#include <csignal>
#include <cstdio>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/apps/replfs/client.h"
#include "src/apps/replfs/server.h"
#include "src/binding/backoff.h"
#include "src/binding/client.h"
#include "src/binding/ringmaster.h"
#include "src/common/check.h"
#include "src/common/log.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/net/fault_fabric.h"
#include "src/rt/fault_control.h"
#include "src/rt/introspect.h"
#include "src/rt/node_config.h"
#include "src/rt/runtime.h"
#include "src/sim/random.h"

namespace circus::rt {
namespace {

// The Ringmaster's binding interface is the first module its process
// exports, so its module number is the same on every node.
constexpr core::ModuleNumber kRingmasterModule = 0;

core::Troupe BootstrapRingmasterTroupe(net::NetAddress address) {
  core::Troupe troupe;
  troupe.id = binding::kRingmasterTroupeId;
  troupe.members.push_back(
      core::ModuleAddress{address, kRingmasterModule});
  return troupe;
}

sim::Duration ServeBudget(const NodeConfig& config) {
  return config.run_seconds > 0 ? sim::Duration::Seconds(config.run_seconds)
                                : sim::Duration::Seconds(1 << 30);
}

// ------------------------------------------------------------ shutdown --
// SIGINT/SIGTERM request a graceful stop. The handler only sets a flag
// and pokes a self-pipe the IoLoop watches, so a signal arriving while
// the loop is blocked in epoll_wait wakes it immediately (no SA_RESTART,
// and no race between the predicate check and the epoll sleep).

volatile std::sig_atomic_t g_shutdown = 0;
int g_signal_pipe[2] = {-1, -1};

void HandleSignal(int) {
  g_shutdown = 1;
  if (g_signal_pipe[1] >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = write(g_signal_pipe[1], &byte, 1);
  }
}

bool ShutdownRequested() { return g_shutdown != 0; }

void InstallShutdownHandling(Runtime& runtime) {
  CIRCUS_CHECK(pipe2(g_signal_pipe, O_NONBLOCK | O_CLOEXEC) == 0);
  runtime.loop().WatchFd(g_signal_pipe[0], [] {
    char buf[16];
    while (read(g_signal_pipe[0], buf, sizeof(buf)) > 0) {
    }
  });
  struct sigaction sa {};
  sa.sa_handler = HandleSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: epoll_wait must EINTR
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
}

// ------------------------------------------------------------- logging --
// rt-aware sink: wall-clock timestamps (the executor clock IS wall time
// here, seeded from CLOCK_REALTIME) and a role/host:port prefix so
// interleaved stderr from a testbed's nodes stays attributable.

int64_t WallRealtimeNanos() {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

void InstallLogSink(const NodeConfig& config) {
  const std::string prefix =
      std::string(config.RoleName()) + "/" + config.listen.ToString();
  SetLogSink([prefix](LogLevel level, int64_t time_ns,
                      const std::string& message) {
    if (time_ns < 0) {
      time_ns = WallRealtimeNanos();  // logged outside the loop
    }
    const time_t seconds = static_cast<time_t>(time_ns / 1000000000);
    tm utc{};
    gmtime_r(&seconds, &utc);
    char clock[16];
    strftime(clock, sizeof(clock), "%H:%M:%S", &utc);
    static const char* kLetters = "TDIWE";
    std::fprintf(stderr, "[%c %s.%06ld %s] %s\n",
                 kLetters[static_cast<int>(level)], clock,
                 static_cast<long>((time_ns % 1000000000) / 1000),
                 prefix.c_str(), message.c_str());
  });
}

#define NODE_LOG(runtime) \
  CIRCUS_LOG_AT(LogLevel::kInfo, (runtime).now().nanos())

// Common epilogue: final metrics snapshot + trace shard, then report.
int FinishNode(Runtime& runtime, NodeObservability& node_obs, int rc) {
  node_obs.FinalFlush();
  if (!node_obs.status().ok()) {
    CIRCUS_LOG_AT(LogLevel::kWarning, runtime.now().nanos())
        << "observability degraded: " << node_obs.status().ToString();
  }
  NODE_LOG(runtime) << (ShutdownRequested() ? "shutdown (signal)"
                                            : "shutdown (budget)");
  return rc;
}

// ------------------------------------------------------ fault wiring --
// When faults_port= is configured, the node's protocol sockets are
// built on a FaultFabric decorating the runtime's UDP fabric, and the
// control endpoint steering it binds on the *inner* fabric (so a
// nemesis can always heal the faults it injected). Bind conflicts on
// the control ports are operator errors: one clear line, nonzero exit.

struct FaultWiring {
  std::unique_ptr<net::FaultFabric> fabric;
  std::unique_ptr<FaultControl> control;
  net::Fabric* protocol_fabric = nullptr;  // where RpcProcess sockets go
};

std::optional<FaultWiring> WireFaults(Runtime& runtime, sim::Host* host,
                                      NodeObservability& node_obs,
                                      const NodeConfig& config) {
  FaultWiring wiring;
  wiring.protocol_fabric = &runtime.fabric();
  if (config.faults_port == 0) {
    return wiring;
  }
  wiring.fabric = std::make_unique<net::FaultFabric>(
      &runtime.fabric(), &runtime.executor(), config.fault_seed);
  circus::StatusOr<std::unique_ptr<FaultControl>> control =
      FaultControl::Open(&runtime, host, wiring.fabric.get(),
                         config.faults_port);
  if (!control.ok()) {
    std::fprintf(stderr, "circus_node: cannot bind faults_port %u: %s\n",
                 config.faults_port, control.status().ToString().c_str());
    return std::nullopt;
  }
  wiring.control = std::move(*control);
  node_obs.SetFaultFabric(wiring.fabric.get());
  wiring.protocol_fabric = wiring.fabric.get();
  return wiring;
}

bool StatsBindFailed(const NodeConfig& config,
                     const NodeObservability& node_obs) {
  if (node_obs.stats_status().ok()) {
    return false;
  }
  std::fprintf(stderr, "circus_node: cannot bind stats_port %u: %s\n",
               config.stats_port,
               node_obs.stats_status().ToString().c_str());
  return true;
}

// --------------------------------------------------------------- roles --

int RunRingmaster(const NodeConfig& config) {
  Runtime runtime;
  InstallShutdownHandling(runtime);
  sim::Host* host = runtime.AddHost("ringmaster", config.listen.host);
  NodeObservability node_obs(&runtime, host, config);
  if (StatsBindFailed(config, node_obs)) {
    return 1;
  }
  std::optional<FaultWiring> faults =
      WireFaults(runtime, host, node_obs, config);
  if (!faults.has_value()) {
    return 1;
  }
  core::RpcProcess process(faults->protocol_fabric, host,
                           config.listen.port);
  node_obs.SetProcess(&process);
  binding::RingmasterServer server(&process);
  server.BootstrapSelf(BootstrapRingmasterTroupe(config.listen));
  NODE_LOG(runtime) << "ringmaster on " << config.listen.ToString();
  runtime.RunUntil(ShutdownRequested, ServeBudget(config));
  return FinishNode(runtime, node_obs, 0);
}

int RunMember(const NodeConfig& config) {
  Runtime runtime;
  InstallShutdownHandling(runtime);
  sim::Host* host = runtime.AddHost("member", config.listen.host);
  NodeObservability node_obs(&runtime, host, config);
  if (StatsBindFailed(config, node_obs)) {
    return 1;
  }
  std::optional<FaultWiring> faults =
      WireFaults(runtime, host, node_obs, config);
  if (!faults.has_value()) {
    return 1;
  }
  core::RpcProcess process(faults->protocol_fabric, host,
                           config.listen.port);
  node_obs.SetProcess(&process);
  binding::BindingClient binding(
      &process, BootstrapRingmasterTroupe(config.ringmaster));
  binding::BindingCache cache(&binding);
  process.SetClientTroupeResolver(cache.MakeResolver());

  // The exported module, by workload. echo: an echo procedure (0) plus
  // a counter procedure (1) whose value is the module state —
  // deterministic, so replicas stay aligned and get_state can seed a
  // joiner. replfs: the stub-generated ReplFs module plus its ordered
  // broadcast writes module; module state is the transactional store.
  core::ModuleNumber module = 0;
  std::function<void(const circus::Bytes&)> accept_state;
  std::unique_ptr<apps::replfs::Server> replfs;
  if (config.workload == "replfs") {
    replfs = std::make_unique<apps::replfs::Server>(&process);
    module = replfs->module_number();
    apps::replfs::Server* server = replfs.get();
    accept_state = [server](const circus::Bytes& bytes) {
      server->store().InternalizeState(bytes);
    };
    host->Spawn(server->DeliverLoop());
  } else {
    auto counter = std::make_shared<int32_t>(0);
    module = process.ExportModule(config.interface_name);
    process.ExportProcedure(
        module, 0,
        [](core::ServerCallContext&, const circus::Bytes& args)
            -> sim::Task<circus::StatusOr<circus::Bytes>> {
          co_return circus::Bytes(args);
        });
    process.ExportProcedure(
        module, 1,
        [counter](core::ServerCallContext&, const circus::Bytes&)
            -> sim::Task<circus::StatusOr<circus::Bytes>> {
          marshal::Writer w;
          w.WriteI32(++*counter);
          co_return w.Take();
        });
    process.SetStateProvider(module, [counter] {
      marshal::Writer w;
      w.WriteI32(*counter);
      return w.Take();
    });
    accept_state = [counter](const circus::Bytes& bytes) {
      marshal::Reader r(bytes);
      *counter = r.ReadI32();
    };
  }

  bool joined = false;
  host->Spawn([](core::RpcProcess* p, core::ModuleNumber m,
                 binding::BindingClient* b, std::string name,
                 std::function<void(const circus::Bytes&)> accept,
                 bool* done) -> sim::Task<void> {
    binding::BackoffPolicy policy;
    sim::Rng rng(
        (static_cast<uint64_t>(p->process_address().port) << 32) ^
        static_cast<uint64_t>(p->host()->executor().now().nanos()));
    for (int attempt = 0; g_shutdown == 0; ++attempt) {
      // A restarted member may still be registered from its previous
      // incarnation; that stale self would answer the replicated
      // get_state as a reborn (empty) replica and fail the join with a
      // divergence. Evict it first — kNotFound just means a clean
      // start.
      circus::StatusOr<core::TroupeId> evicted =
          co_await b->RemoveTroupeMember(name, p->module_address(m));
      (void)evicted;
      circus::Status status =
          co_await binding::JoinTroupe(p, m, b, name, accept);
      if (status.ok()) {
        *done = true;
        co_return;
      }
      CIRCUS_LOG(LogLevel::kWarning)
          << "join attempt " << attempt
          << " failed: " << status.ToString();
      co_await p->host()->SleepFor(
          binding::BackoffDelay(policy, attempt, rng));
    }
  }(&process, module, &binding, config.troupe, accept_state, &joined));

  if (!runtime.RunUntil(
          [&joined] { return joined || ShutdownRequested(); },
          sim::Duration::Seconds(60)) ||
      !joined) {
    CIRCUS_LOG_AT(LogLevel::kError, runtime.now().nanos())
        << "could not join troupe '" << config.troupe << "'";
    return FinishNode(runtime, node_obs, 1);
  }
  NODE_LOG(runtime) << "member of '" << config.troupe << "' on "
                    << config.listen.ToString();
  runtime.RunUntil(ShutdownRequested, ServeBudget(config));
  return FinishNode(runtime, node_obs, 0);
}

// ------------------------------------------------------ replfs client --
// The replfs workload speaks transactions, not raw calls: each probe is
// open / write one block / close / commit through apps::replfs::Client.
// Binding is explicit (Import + Bind) rather than through the process's
// transparent troupe resolver: replfs derives its writes-broadcast
// troupe from the bound ReplFs troupe by module-number offset, and a
// transparent re-resolution by troupe id would rebind it to the ReplFs
// modules. On failure the client re-imports and re-binds by hand.

sim::Task<circus::Status> BindReplFs(binding::BindingCache* cache,
                                     apps::replfs::Client* fs,
                                     const std::string& name) {
  circus::StatusOr<core::Troupe> troupe = co_await cache->Import(name);
  if (!troupe.ok()) {
    co_return troupe.status();
  }
  fs->Bind(*troupe);
  co_return circus::Status::Ok();
}

// One probe transaction: write `words` words of `fill` into one block
// of `file`. A free coroutine (not a lambda) per the CLAUDE.md rules.
sim::Task<circus::Status> WriteBlockBody(std::string file, uint32_t block,
                                         uint16_t fill, int words,
                                         apps::replfs::Session* session) {
  circus::StatusOr<uint16_t> fd = co_await session->Open(file);
  if (!fd.ok()) {
    co_return fd.status();
  }
  idl::ReplFs::BlockData data(static_cast<size_t>(words), fill);
  circus::Status wrote = co_await session->Write(*fd, block, std::move(data));
  if (!wrote.ok()) {
    co_return wrote;
  }
  co_return co_await session->Close(*fd);
}

apps::replfs::Client::Body MakeWriteBlockBody(std::string file,
                                              uint32_t block, uint16_t fill,
                                              int words) {
  return [file, block, fill, words](apps::replfs::Session& session) {
    return WriteBlockBody(file, block, fill, words, &session);
  };
}

struct ReplFsProgress {
  std::vector<double> latencies_ms;
  size_t failed = 0;
  bool finished = false;
  bool ok = true;
  bool verified = false;
};

sim::Task<void> ReplFsClientLoop(Runtime* rt, core::RpcProcess* p,
                                 binding::BindingCache* c,
                                 apps::replfs::Client* fs, NodeConfig cfg,
                                 std::shared_ptr<ReplFsProgress> out) {
  const core::ThreadId thread = p->NewRootThread();
  sim::Rng rng((static_cast<uint64_t>(p->process_address().port) << 32) ^
               static_cast<uint64_t>(p->host()->executor().now().nanos()));
  // Initial bind, retried: the testbed may still be assembling (or, for
  // a post-chaos verify probe, still healing).
  for (int attempt = 0;; ++attempt) {
    circus::Status bound = co_await BindReplFs(c, fs, cfg.troupe);
    if (bound.ok()) {
      break;
    }
    if (attempt >= 40 || g_shutdown != 0) {
      CIRCUS_LOG(LogLevel::kError)
          << "cannot bind '" << cfg.troupe << "': " << bound.ToString();
      out->ok = false;
      out->finished = true;
      co_return;
    }
    c->Invalidate(cfg.troupe);
    co_await p->host()->SleepFor(sim::Duration::Millis(250));
  }
  apps::replfs::ClientOptions options;
  options.rng = &rng;
  const int words = cfg.payload > 0 ? cfg.payload : 1;

  if (cfg.verify) {
    // Read-your-writes convergence probe: commit one known block, then
    // read it back unanimously. The read collates at every member —
    // restarted incarnations included — so success means the committed
    // write is identical troupe-wide.
    options.max_attempts = 10;
    apps::replfs::Client::Body body =
        MakeWriteBlockBody("verify", 0, 0xC0DE, words);
    circus::Status committed = co_await fs->Run(thread, body, options);
    if (!committed.ok()) {
      CIRCUS_LOG(LogLevel::kError)
          << "verify commit failed: " << committed.ToString();
      out->ok = false;
      out->finished = true;
      co_return;
    }
    circus::StatusOr<idl::ReplFs::BlockData> readback =
        co_await fs->ReadBlock(thread, "verify", 0);
    bool good = readback.ok() &&
                readback->size() == static_cast<size_t>(words);
    if (good) {
      for (uint16_t word : *readback) {
        good = good && word == 0xC0DE;
      }
    } else {
      CIRCUS_LOG(LogLevel::kError)
          << "verify readback failed: " << readback.status().ToString();
    }
    circus::StatusOr<idl::ReplFs::Manifest> manifest =
        co_await fs->GetManifest(thread);
    good = good && manifest.ok();
    out->verified = good;
    out->ok = good;
    out->finished = true;
    co_return;
  }

  // Load / availability-probe mode: one single-block transaction per
  // probe, striped over a small block range so the manifest and block
  // keys both get steady write traffic.
  options.max_attempts = cfg.resilient ? 3 : 8;
  for (int i = 0; i < cfg.calls && g_shutdown == 0; ++i) {
    const sim::TimePoint start = rt->loop().WallNow();
    apps::replfs::Client::Body body = MakeWriteBlockBody(
        "load", static_cast<uint32_t>(i % 64), static_cast<uint16_t>(i),
        words);
    circus::Status status = co_await fs->Run(thread, body, options);
    if (status.ok()) {
      out->latencies_ms.push_back((rt->loop().WallNow() - start).ToMillisF());
    } else if (cfg.resilient) {
      ++out->failed;
      CIRCUS_LOG(LogLevel::kWarning)
          << "txn " << i << " failed: " << status.ToString();
      // The binding may be stale in a way no member is left to flag
      // (SIGKILL, partition): re-import and re-derive the writes troupe
      // before the next probe. A failed rebind just means the next
      // probe fails too and we try again.
      c->Invalidate(cfg.troupe);
      circus::Status rebound = co_await BindReplFs(c, fs, cfg.troupe);
      (void)rebound;
    } else {
      CIRCUS_LOG(LogLevel::kError)
          << "txn " << i << " failed: " << status.ToString();
      out->ok = false;
      break;
    }
    if (cfg.resilient) {
      co_await p->host()->SleepFor(sim::Duration::Millis(50));
    }
  }
  out->finished = true;
}

int RunReplFsClient(const NodeConfig& config, Runtime& runtime,
                    NodeObservability& node_obs, core::RpcProcess* process,
                    binding::BindingCache* cache) {
  apps::replfs::Client fs(process);
  auto progress = std::make_shared<ReplFsProgress>();
  process->host()->Spawn(
      ReplFsClientLoop(&runtime, process, cache, &fs, config, progress));
  runtime.RunUntil(
      [progress] { return progress->finished || ShutdownRequested(); },
      sim::Duration::Seconds(60 + config.calls));
  if (config.verify) {
    std::printf("verify=%s\n", progress->verified ? "ok" : "failed");
    return FinishNode(runtime, node_obs, progress->verified ? 0 : 1);
  }
  const bool stopped_early = !progress->finished && ShutdownRequested();
  if (!stopped_early && !config.resilient &&
      (!progress->finished || !progress->ok ||
       progress->latencies_ms.empty())) {
    CIRCUS_LOG_AT(LogLevel::kError, runtime.now().nanos())
        << "replfs client run failed";
    return FinishNode(runtime, node_obs, 1);
  }
  double total = 0;
  double min = 0;
  double max = 0;
  if (!progress->latencies_ms.empty()) {
    min = progress->latencies_ms.front();
    max = min;
    for (double ms : progress->latencies_ms) {
      total += ms;
      min = ms < min ? ms : min;
      max = ms > max ? ms : max;
    }
  }
  const size_t ok_calls = progress->latencies_ms.size();
  const double mean = ok_calls > 0 ? total / ok_calls : 0.0;
  if (config.resilient) {
    // Same availability line the nemesis parses for the echo workload.
    std::printf(
        "calls=%zu ok=%zu failed=%zu mean_ms=%.3f min_ms=%.3f "
        "max_ms=%.3f\n",
        ok_calls + progress->failed, ok_calls, progress->failed, mean, min,
        max);
  } else {
    std::printf("calls=%zu mean_ms=%.3f min_ms=%.3f max_ms=%.3f\n",
                ok_calls, mean, min, max);
  }
  return FinishNode(runtime, node_obs, 0);
}

int RunClient(const NodeConfig& config) {
  Runtime runtime;
  InstallShutdownHandling(runtime);
  sim::Host* host = runtime.AddHost("client", config.listen.host);
  NodeObservability node_obs(&runtime, host, config);
  if (StatsBindFailed(config, node_obs)) {
    return 1;
  }
  std::optional<FaultWiring> faults =
      WireFaults(runtime, host, node_obs, config);
  if (!faults.has_value()) {
    return 1;
  }
  core::RpcProcess process(faults->protocol_fabric, host,
                           config.listen.port);
  node_obs.SetProcess(&process);
  binding::BindingClient binding(
      &process, BootstrapRingmasterTroupe(config.ringmaster));
  binding::BindingCache cache(&binding);
  if (config.workload == "replfs") {
    // Deliberately no transparent troupe resolver (see the note above
    // RunReplFsClient: it would rebind the derived writes troupe wrong).
    return RunReplFsClient(config, runtime, node_obs, &process, &cache);
  }
  process.SetClientTroupeResolver(cache.MakeResolver());

  struct Progress {
    std::vector<double> latencies_ms;
    size_t failed = 0;
    bool finished = false;
    bool ok = true;
  };
  auto progress = std::make_shared<Progress>();
  host->Spawn([](Runtime* rt, core::RpcProcess* p, binding::BindingCache* c,
                 NodeConfig cfg,
                 std::shared_ptr<Progress> out) -> sim::Task<void> {
    const core::ThreadId thread = p->NewRootThread();
    const circus::Bytes args(static_cast<size_t>(cfg.payload), 0x5A);
    core::CallOptions opts;
    if (cfg.collation == "first_come") {
      opts.collation = core::Collation::kFirstCome;
    } else if (cfg.collation == "majority") {
      opts.collation = core::Collation::kMajority;
    }
    const auto procedure =
        static_cast<core::ProcedureNumber>(cfg.procedure);
    for (int i = 0; i < cfg.calls && g_shutdown == 0; ++i) {
      const sim::TimePoint start = rt->loop().WallNow();
      circus::StatusOr<circus::Bytes> result = co_await c->CallByName(
          p, thread, cfg.troupe, procedure, args, opts);
      if (result.ok()) {
        out->latencies_ms.push_back(
            (rt->loop().WallNow() - start).ToMillisF());
      } else if (cfg.resilient) {
        // Availability-probe mode: a failed call is a data point, not
        // the end of the run. The cached binding may be stale in a way
        // no member is left to flag, so drop it before the next probe.
        ++out->failed;
        c->Invalidate(cfg.troupe);
        CIRCUS_LOG(LogLevel::kWarning)
            << "call " << i << " failed: "
            << result.status().ToString();
      } else {
        CIRCUS_LOG(LogLevel::kError)
            << "call " << i << " failed: "
            << result.status().ToString();
        out->ok = false;
        break;
      }
      if (cfg.resilient) {
        // Pace the probes so the run spans the chaos schedule instead
        // of burning all calls before the first fault lands.
        co_await p->host()->SleepFor(sim::Duration::Millis(50));
      }
    }
    out->finished = true;
  }(&runtime, &process, &cache, config, progress));

  runtime.RunUntil(
      [progress] { return progress->finished || ShutdownRequested(); },
      sim::Duration::Seconds(60 + config.calls));
  // An operator stop (SIGINT/SIGTERM) mid-run is a graceful exit, not a
  // failure: report whatever completed and flush as usual.
  const bool stopped_early = !progress->finished && ShutdownRequested();
  if (!stopped_early && !config.resilient &&
      (!progress->finished || !progress->ok ||
       progress->latencies_ms.empty())) {
    CIRCUS_LOG_AT(LogLevel::kError, runtime.now().nanos())
        << "client run failed";
    return FinishNode(runtime, node_obs, 1);
  }
  if (progress->latencies_ms.empty() && !config.resilient) {
    return FinishNode(runtime, node_obs, 0);
  }
  double total = 0;
  double min = 0;
  double max = 0;
  if (!progress->latencies_ms.empty()) {
    min = progress->latencies_ms.front();
    max = min;
    for (double ms : progress->latencies_ms) {
      total += ms;
      min = ms < min ? ms : min;
      max = ms > max ? ms : max;
    }
  }
  const size_t ok_calls = progress->latencies_ms.size();
  const double mean = ok_calls > 0 ? total / ok_calls : 0.0;
  if (config.resilient) {
    // The availability line the nemesis parses: attempted/ok/failed.
    std::printf(
        "calls=%zu ok=%zu failed=%zu mean_ms=%.3f min_ms=%.3f "
        "max_ms=%.3f\n",
        ok_calls + progress->failed, ok_calls, progress->failed, mean, min,
        max);
  } else {
    std::printf("calls=%zu mean_ms=%.3f min_ms=%.3f max_ms=%.3f\n",
                ok_calls, mean, min, max);
  }
  return FinishNode(runtime, node_obs, 0);
}

int Main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: circus_node <config-file>\n");
    return 2;
  }
  circus::StatusOr<NodeConfig> config = LoadNodeConfig(argv[1]);
  if (!config.ok()) {
    std::fprintf(stderr, "circus_node: %s\n",
                 config.status().ToString().c_str());
    return 2;
  }
  InstallLogSink(*config);
  if (GetLogLevel() > LogLevel::kInfo) {
    SetLogLevel(LogLevel::kInfo);  // a daemon should say what it is doing
  }
  switch (config->role) {
    case NodeConfig::Role::kRingmaster:
      return RunRingmaster(*config);
    case NodeConfig::Role::kMember:
      return RunMember(*config);
    case NodeConfig::Role::kClient:
      return RunClient(*config);
  }
  return 2;
}

}  // namespace
}  // namespace circus::rt

int main(int argc, char** argv) { return circus::rt::Main(argc, argv); }
