#include "src/rt/node_config.h"

#include <fstream>
#include <sstream>

namespace circus::rt {

namespace {

circus::Status ParseError(const std::string& what) {
  return circus::Status(circus::ErrorCode::kInvalidArgument, what);
}

// Trims ASCII whitespace from both ends.
std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t\r\n");
  if (b == std::string::npos) {
    return "";
  }
  size_t e = s.find_last_not_of(" \t\r\n");
  return s.substr(b, e - b + 1);
}

circus::StatusOr<int> ParseInt(const std::string& key,
                               const std::string& value) {
  try {
    size_t consumed = 0;
    int v = std::stoi(value, &consumed);
    if (consumed != value.size()) {
      return ParseError(key + ": trailing junk in '" + value + "'");
    }
    return v;
  } catch (const std::exception&) {
    return ParseError(key + ": not a number: '" + value + "'");
  }
}

}  // namespace

circus::StatusOr<net::NetAddress> ParseNetAddress(const std::string& text) {
  const size_t colon = text.rfind(':');
  if (colon == std::string::npos) {
    return ParseError("address '" + text + "' missing ':port'");
  }
  circus::StatusOr<int> port = ParseInt("port", text.substr(colon + 1));
  if (!port.ok()) {
    return port.status();
  }
  if (*port < 0 || *port > 65535) {
    return ParseError("port out of range in '" + text + "'");
  }
  uint32_t host = 0;
  int octets = 0;
  std::istringstream ip(text.substr(0, colon));
  std::string part;
  while (std::getline(ip, part, '.')) {
    circus::StatusOr<int> octet = ParseInt("ip octet", part);
    if (!octet.ok()) {
      return octet.status();
    }
    if (*octet < 0 || *octet > 255) {
      return ParseError("bad IPv4 octet in '" + text + "'");
    }
    host = (host << 8) | static_cast<uint32_t>(*octet);
    ++octets;
  }
  if (octets != 4) {
    return ParseError("'" + text + "' is not dotted-quad IPv4");
  }
  return net::NetAddress{host, static_cast<net::Port>(*port)};
}

circus::StatusOr<NodeConfig> ParseNodeConfig(const std::string& text) {
  NodeConfig config;
  bool have_listen = false;
  bool have_ringmaster = false;
  std::istringstream in(text);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (size_t hash = line.find('#'); hash != std::string::npos) {
      line = line.substr(0, hash);
    }
    line = Trim(line);
    if (line.empty()) {
      continue;
    }
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return ParseError("line " + std::to_string(lineno) +
                        ": expected key = value");
    }
    const std::string key = Trim(line.substr(0, eq));
    const std::string value = Trim(line.substr(eq + 1));
    if (key == "role") {
      if (value == "ringmaster") {
        config.role = NodeConfig::Role::kRingmaster;
      } else if (value == "member") {
        config.role = NodeConfig::Role::kMember;
      } else if (value == "client") {
        config.role = NodeConfig::Role::kClient;
      } else {
        return ParseError("unknown role '" + value + "'");
      }
    } else if (key == "listen") {
      circus::StatusOr<net::NetAddress> addr = ParseNetAddress(value);
      if (!addr.ok()) {
        return addr.status();
      }
      config.listen = *addr;
      have_listen = true;
    } else if (key == "ringmaster") {
      circus::StatusOr<net::NetAddress> addr = ParseNetAddress(value);
      if (!addr.ok()) {
        return addr.status();
      }
      config.ringmaster = *addr;
      have_ringmaster = true;
    } else if (key == "troupe") {
      config.troupe = value;
    } else if (key == "interface") {
      config.interface_name = value;
    } else if (key == "node_name") {
      config.node_name = value;
    } else if (key == "trace_dir") {
      config.trace_dir = value;
    } else if (key == "tap_dir") {
      config.tap_dir = value;
    } else if (key == "stats_port" || key == "faults_port") {
      circus::StatusOr<int> v = ParseInt(key, value);
      if (!v.ok()) {
        return v.status();
      }
      if (*v < 0 || *v > 65535) {
        return ParseError(key + " out of range");
      }
      (key == "stats_port" ? config.stats_port : config.faults_port) =
          static_cast<net::Port>(*v);
    } else if (key == "fault_seed") {
      try {
        size_t consumed = 0;
        config.fault_seed = std::stoull(value, &consumed);
        if (consumed != value.size()) {
          return ParseError("fault_seed: trailing junk in '" + value + "'");
        }
      } catch (const std::exception&) {
        return ParseError("fault_seed: not a number: '" + value + "'");
      }
    } else if (key == "resilient") {
      circus::StatusOr<int> v = ParseInt(key, value);
      if (!v.ok()) {
        return v.status();
      }
      config.resilient = *v != 0;
    } else if (key == "collation") {
      if (value != "unanimous" && value != "first_come" &&
          value != "majority") {
        return ParseError("collation must be unanimous|first_come|majority");
      }
      config.collation = value;
    } else if (key == "workload") {
      if (value != "echo" && value != "replfs") {
        return ParseError("workload must be echo|replfs");
      }
      config.workload = value;
    } else if (key == "verify") {
      circus::StatusOr<int> v = ParseInt(key, value);
      if (!v.ok()) {
        return v.status();
      }
      config.verify = *v != 0;
    } else if (key == "procedure") {
      circus::StatusOr<int> v = ParseInt(key, value);
      if (!v.ok()) {
        return v.status();
      }
      if (*v < 0 || *v > 65535) {
        return ParseError("procedure out of range");
      }
      config.procedure = *v;
    } else if (key == "slow_call_us") {
      circus::StatusOr<int> v = ParseInt(key, value);
      if (!v.ok()) {
        return v.status();
      }
      if (*v < 0) {
        return ParseError("slow_call_us must be non-negative");
      }
      config.slow_call_us = *v;
    } else if (key == "calls" || key == "payload" || key == "run_seconds") {
      circus::StatusOr<int> v = ParseInt(key, value);
      if (!v.ok()) {
        return v.status();
      }
      if (*v < 0) {
        return ParseError(key + " must be non-negative");
      }
      (key == "calls"     ? config.calls
       : key == "payload" ? config.payload
                          : config.run_seconds) = *v;
    } else {
      return ParseError("line " + std::to_string(lineno) +
                        ": unknown key '" + key + "'");
    }
  }
  if (!have_listen) {
    return ParseError("config missing 'listen'");
  }
  if (config.role != NodeConfig::Role::kRingmaster && !have_ringmaster) {
    return ParseError("role needs a 'ringmaster' bootstrap address");
  }
  return config;
}

std::string NodeConfig::DisplayName() const {
  if (!node_name.empty()) {
    return node_name;
  }
  return std::string(RoleName()) + "-" + std::to_string(listen.port);
}

const char* NodeConfig::RoleName() const {
  switch (role) {
    case Role::kRingmaster:
      return "ringmaster";
    case Role::kMember:
      return "member";
    case Role::kClient:
      return "client";
  }
  return "unknown";
}

circus::StatusOr<NodeConfig> LoadNodeConfig(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return circus::Status(circus::ErrorCode::kNotFound,
                          "cannot open config: " + path);
  }
  std::ostringstream text;
  text << in.rdbuf();
  return ParseNodeConfig(text.str());
}

}  // namespace circus::rt
