// circus_trace_merge: joins N per-node trace shards into one Chrome
// trace_event file (open in chrome://tracing or Perfetto).
//
//   circus_trace_merge [-o merged.trace.json] shard...
//
// Shards come from circus_node (trace_dir=) or from tests' ShardWriters.
// Events are correlated by the propagated logical thread ID; per-node
// clocks are aligned from paired-message call/return exchanges, and the
// alignment report — including the residual skew per node pair that the
// symmetric-delay model could not explain — goes to stdout. Exit codes:
// 0 merged, 2 usage/input error, 3 a shard could not be clock-aligned
// (no paired traffic links it to the rest).
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "src/obs/export.h"
#include "src/obs/merge.h"
#include "src/obs/shard.h"

namespace circus::rt {
namespace {

int Main(int argc, char** argv) {
  std::string out_path = "merged.trace.json";
  std::vector<std::string> shard_paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "-o") == 0) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "circus_trace_merge: -o needs a path\n");
        return 2;
      }
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "-h") == 0 ||
               std::strcmp(argv[i], "--help") == 0) {
      std::fprintf(stderr,
                   "usage: circus_trace_merge [-o out.trace.json] shard...\n");
      return 2;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "circus_trace_merge: unknown flag %s\n", argv[i]);
      std::fprintf(stderr,
                   "usage: circus_trace_merge [-o out.trace.json] shard...\n");
      return 2;
    } else {
      shard_paths.push_back(argv[i]);
    }
  }
  if (shard_paths.empty()) {
    std::fprintf(stderr,
                 "usage: circus_trace_merge [-o out.trace.json] shard...\n");
    return 2;
  }

  std::vector<obs::ShardFile> shards;
  for (const std::string& path : shard_paths) {
    circus::StatusOr<obs::ShardFile> shard = obs::ReadShardFile(path);
    if (!shard.ok()) {
      std::fprintf(stderr, "circus_trace_merge: %s\n",
                   shard.status().ToString().c_str());
      return 2;
    }
    shards.push_back(*std::move(shard));
  }

  circus::StatusOr<obs::MergeResult> merged = obs::MergeShards(shards);
  if (!merged.ok()) {
    std::fprintf(stderr, "circus_trace_merge: %s\n",
                 merged.status().ToString().c_str());
    return 2;
  }

  std::fputs(obs::MergeReport(shards, *merged).c_str(), stdout);

  const std::string trace =
      obs::ToChromeTrace(merged->events, merged->host_names);
  circus::Status written = obs::WriteStringToFile(out_path, trace);
  if (!written.ok()) {
    std::fprintf(stderr, "circus_trace_merge: %s\n",
                 written.ToString().c_str());
    return 2;
  }
  std::printf("wrote %s (%zu events from %zu shards)\n", out_path.c_str(),
              merged->events.size(), shards.size());

  for (size_t k = 0; k < shards.size(); ++k) {
    if (!merged->aligned[k]) {
      std::fprintf(stderr,
                   "circus_trace_merge: shard %zu (%s) has no paired "
                   "traffic linking it to the reference clock\n",
                   k, shard_paths[k].c_str());
      return 3;
    }
  }
  return 0;
}

}  // namespace
}  // namespace circus::rt

int main(int argc, char** argv) { return circus::rt::Main(argc, argv); }
