// Configuration for the circus_node daemon: a small key=value file
// (comments with '#', blank lines ignored) describing one node of a real
// deployment. One circus_node OS process runs one role; a loopback
// testbed is several circus_node processes (or one rt_loopback_test
// process) sharing 127.0.0.1.
//
//   role = ringmaster | member | client
//   listen = 127.0.0.1:9000        # this node's process address
//   ringmaster = 127.0.0.1:9000    # bootstrap binding (member/client)
//   troupe = echo                  # troupe name to register/join/call
//   interface = echo               # exported interface name (member)
//   calls = 100                    # client: calls to issue
//   payload = 64                   # client: argument bytes per call
//   run_seconds = 0                # serve duration; 0 = forever
//   node_name =                    # display name; default "<role>-<port>"
//   stats_port = 0                 # UDP introspection port; 0 = disabled
//   slow_call_us = 0               # dump calls slower than this to the
//                                  # trace shard as slow_call events;
//                                  # 0 = disabled
//   trace_dir =                    # write <node_name>.trace.jsonl here;
//                                  # empty = no trace shard
//   tap_dir =                      # write <node_name>.tap.jsonl packet
//                                  # capture here; empty = no tap
//   faults_port = 0                # UDP fault-injection control port;
//                                  # 0 = no fault fabric
//   fault_seed = 0                 # FaultFabric decision-stream seed
//   resilient = 0                  # client: 1 = keep calling through
//                                  # failures (availability probe mode)
//   collation = unanimous          # client: unanimous|first_come|majority
//   procedure = 0                  # client: procedure number to call
//   workload = echo                # application: echo | replfs
//   verify = 0                     # replfs client: 1 = one read-your-
//                                  # writes convergence check, then exit
#ifndef SRC_RT_NODE_CONFIG_H_
#define SRC_RT_NODE_CONFIG_H_

#include <cstdint>
#include <string>

#include "src/common/status.h"
#include "src/net/address.h"

namespace circus::rt {

struct NodeConfig {
  enum class Role { kRingmaster, kMember, kClient };

  Role role = Role::kMember;
  net::NetAddress listen;
  net::NetAddress ringmaster;
  std::string troupe = "echo";
  std::string interface_name = "echo";
  int calls = 100;
  int payload = 64;
  int run_seconds = 0;
  std::string node_name;        // empty: derived as "<role>-<listen port>"
  net::Port stats_port = 0;     // 0: no introspection endpoint
  int slow_call_us = 0;         // 0: no slow-call dump
  std::string trace_dir;        // empty: no trace shard
  std::string tap_dir;          // empty: no packet capture
  net::Port faults_port = 0;    // 0: no fault-injection control endpoint
  uint64_t fault_seed = 0;      // decision-stream seed for the FaultFabric
  bool resilient = false;       // client keeps calling through failures
  std::string collation = "unanimous";  // client reply collation
  int procedure = 0;            // client procedure number
  std::string workload = "echo";  // member/client application
  bool verify = false;          // replfs client: convergence probe mode

  // The configured node_name, or the "<role>-<port>" default.
  std::string DisplayName() const;
  // "ringmaster" | "member" | "client".
  const char* RoleName() const;
};

// "10.1.2.3:9000" -> NetAddress (host byte order).
circus::StatusOr<net::NetAddress> ParseNetAddress(const std::string& text);

// Parses config text; unknown keys are an error (they are typos).
circus::StatusOr<NodeConfig> ParseNodeConfig(const std::string& text);

// Reads and parses a config file.
circus::StatusOr<NodeConfig> LoadNodeConfig(const std::string& path);

}  // namespace circus::rt

#endif  // SRC_RT_NODE_CONFIG_H_
