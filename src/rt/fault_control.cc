#include "src/rt/fault_control.h"

#include <string>
#include <utility>

#include "src/common/log.h"

namespace circus::rt {
namespace {

sim::Task<void> ServeFaults(FaultControl* control,
                            net::DatagramSocket* socket) {
  for (;;) {
    net::Datagram request = co_await socket->Receive();
    std::string command(request.payload.begin(), request.payload.end());
    std::string reply = control->HandleCommand(command);
    circus::Bytes bytes(reply.begin(), reply.end());
    co_await socket->Send(request.source, std::move(bytes));
  }
}

}  // namespace

circus::StatusOr<std::unique_ptr<FaultControl>> FaultControl::Open(
    Runtime* runtime, sim::Host* host, net::FaultFabric* fabric,
    net::Port port) {
  circus::StatusOr<std::unique_ptr<net::DatagramSocket>> socket =
      net::DatagramSocket::Open(&runtime->fabric(), host, port);
  if (!socket.ok()) {
    return socket.status();
  }
  std::unique_ptr<FaultControl> control(
      new FaultControl(fabric, std::move(*socket)));
  host->Spawn(ServeFaults(control.get(), control->socket_.get()));
  return control;
}

std::string FaultControl::HandleCommand(std::string_view command) {
  circus::StatusOr<std::string> result = fabric_->ApplyCommand(command);
  if (!result.ok()) {
    return "err " + result.status().message() + "\n";
  }
  CIRCUS_LOG(LogLevel::kInfo)
      << "fault command applied: "
      << std::string(command.substr(0, 96))
      << " -> " << fabric_->StatusLine();
  std::string reply = *std::move(result);
  if (reply.empty() || reply.back() != '\n') {
    reply += '\n';
  }
  // One datagram per reply, same framing discipline as introspect.
  if (reply.size() > net::Fabric::kMaxDatagramBytes) {
    reply.resize(net::Fabric::kMaxDatagramBytes - 4);
    reply += "...\n";
  }
  return reply;
}

}  // namespace circus::rt
