#include "src/rt/io_loop.h"

#include <sys/epoll.h>
#include <sys/timerfd.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "src/common/check.h"

namespace circus::rt {

namespace {

int64_t RealtimeNanos() {
  timespec ts{};
  CIRCUS_CHECK(clock_gettime(CLOCK_REALTIME, &ts) == 0);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

}  // namespace

int64_t IoLoop::MonotonicNanos() {
  timespec ts{};
  CIRCUS_CHECK(clock_gettime(CLOCK_MONOTONIC, &ts) == 0);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000 + ts.tv_nsec;
}

IoLoop::IoLoop(sim::Executor* executor) : executor_(executor) {
  epoll_fd_ = epoll_create1(EPOLL_CLOEXEC);
  CIRCUS_CHECK_MSG(epoll_fd_ >= 0, "epoll_create1 failed");
  timer_fd_ = timerfd_create(CLOCK_MONOTONIC, TFD_NONBLOCK | TFD_CLOEXEC);
  CIRCUS_CHECK_MSG(timer_fd_ >= 0, "timerfd_create failed");
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = timer_fd_;
  CIRCUS_CHECK(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, timer_fd_, &ev) == 0);

  // Seed the virtual clock from the wall-clock epoch (see header).
  const sim::TimePoint epoch = sim::TimePoint::FromNanos(RealtimeNanos());
  if (epoch > executor_->now()) {
    executor_->RunUntil(epoch);
  }
  sim_origin_ = executor_->now();
  mono_origin_ns_ = MonotonicNanos();
}

IoLoop::~IoLoop() {
  if (timer_fd_ >= 0) {
    close(timer_fd_);
  }
  if (epoll_fd_ >= 0) {
    close(epoll_fd_);
  }
}

sim::TimePoint IoLoop::WallNow() const {
  return sim_origin_ +
         sim::Duration::Nanos(MonotonicNanos() - mono_origin_ns_);
}

void IoLoop::WatchFd(int fd, std::function<void()> on_readable) {
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = fd;
  CIRCUS_CHECK_MSG(epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) == 0,
                   "epoll_ctl(ADD) failed");
  fd_callbacks_[fd] = std::move(on_readable);
}

void IoLoop::UnwatchFd(int fd) {
  if (fd_callbacks_.erase(fd) == 0) {
    return;
  }
  // May fail with EBADF if the caller closed the fd first; that removal
  // already happened implicitly in the kernel.
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
}

void IoLoop::SetObservability(obs::EventBus* bus,
                              obs::MetricsRegistry* metrics) {
  bus_ = bus;
  if (metrics != nullptr) {
    wakeups_ = metrics->GetCounter("rt.loop.wakeups");
    fd_events_ = metrics->GetCounter("rt.loop.fd_events");
    timer_slack_us_ = metrics->GetHistogram("rt.loop.timer_slack_us");
    iter_us_ = metrics->GetHistogram("rt.loop.iter_us");
  } else {
    wakeups_ = nullptr;
    fd_events_ = nullptr;
    timer_slack_us_ = nullptr;
    iter_us_ = nullptr;
  }
}

void IoLoop::ArmTimer(sim::TimePoint wake) {
  armed_wake_ = wake;
  int64_t delta_ns = (wake - WallNow()).nanos();
  if (delta_ns < 1) {
    delta_ns = 1;  // 0 would disarm the timer
  }
  itimerspec its{};
  its.it_value.tv_sec = delta_ns / 1000000000;
  its.it_value.tv_nsec = delta_ns % 1000000000;
  CIRCUS_CHECK(timerfd_settime(timer_fd_, 0, &its, nullptr) == 0);
}

bool IoLoop::RunUntil(const std::function<bool()>& done,
                      sim::Duration wall_timeout) {
  stop_ = false;
  const sim::TimePoint deadline = WallNow() + wall_timeout;
  // Work/idle attribution: everything between epoll returns is work
  // (due events, done checks, fd callbacks); the epoll_wait itself is
  // idle. `mark` carries the boundary across iterations.
  int64_t mark = MonotonicNanos();
  while (!stop_) {
    // Run everything whose virtual deadline has passed, advancing the
    // executor clock to track the wall clock.
    executor_->RunUntil(WallNow());
    if (done && done()) {
      return true;
    }
    if (WallNow() >= deadline) {
      break;
    }
    sim::TimePoint wake = deadline;
    if (std::optional<sim::TimePoint> next = executor_->NextEventTime();
        next.has_value() && *next < wake) {
      wake = *next;
    }
    ArmTimer(wake);
    const int64_t wait_start = MonotonicNanos();
    const int64_t work_ns = wait_start - mark;
    stats_.busy_ns += work_ns;
    if (iter_us_ != nullptr) {
      iter_us_->Observe(static_cast<double>(work_ns) / 1000.0);
    }
    epoll_event events[16];
    const int n = epoll_wait(epoll_fd_, events,
                             static_cast<int>(std::size(events)), -1);
    mark = MonotonicNanos();
    stats_.idle_ns += mark - wait_start;
    if (n < 0) {
      CIRCUS_CHECK_MSG(errno == EINTR, "epoll_wait failed");
      continue;
    }
    ++stats_.wakeups;
    bool timer_fired = false;
    int ready_fds = 0;
    for (int i = 0; i < n; ++i) {
      if (events[i].data.fd == timer_fd_) {
        timer_fired = true;
      } else {
        ++ready_fds;
      }
    }
    stats_.fd_events += static_cast<uint64_t>(ready_fds);
    int64_t slack_ns = 0;
    if (timer_fired) {
      ++stats_.timer_fires;
      slack_ns = (WallNow() - armed_wake_).nanos();
      if (slack_ns < 0) {
        slack_ns = 0;
      }
    }
    if (wakeups_ != nullptr) {
      wakeups_->Increment();
      fd_events_->Add(static_cast<uint64_t>(ready_fds));
      if (timer_fired) {
        timer_slack_us_->Observe(static_cast<double>(slack_ns) / 1000.0);
      }
    }
    if (bus_ != nullptr && bus_->active()) {
      obs::Event e;
      e.kind = obs::EventKind::kLoopWakeup;
      e.a = static_cast<uint64_t>(ready_fds);
      e.b = timer_fired ? 1 : 0;
      e.c = static_cast<uint64_t>(slack_ns);
      bus_->Publish(std::move(e));
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == timer_fd_) {
        uint64_t expirations = 0;
        // Drain; the only purpose was to bound the epoll_wait.
        [[maybe_unused]] ssize_t r =
            read(timer_fd_, &expirations, sizeof(expirations));
        continue;
      }
      // Re-look up per event: an earlier callback in this batch (or the
      // callback itself) may have unwatched the fd. Copy out so that
      // UnwatchFd from inside the callback cannot free the closure
      // mid-flight.
      auto it = fd_callbacks_.find(fd);
      if (it == fd_callbacks_.end()) {
        continue;
      }
      std::function<void()> cb = it->second;
      cb();
    }
  }
  return done ? done() : false;
}

}  // namespace circus::rt
