#include "src/rt/udp_fabric.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "src/common/check.h"

namespace circus::rt {

namespace {

sockaddr_in ToSockaddr(net::NetAddress addr) {
  sockaddr_in sa{};
  sa.sin_family = AF_INET;
  sa.sin_addr.s_addr = htonl(addr.host);
  sa.sin_port = htons(addr.port);
  return sa;
}

net::NetAddress FromSockaddr(const sockaddr_in& sa) {
  return net::NetAddress{ntohl(sa.sin_addr.s_addr), ntohs(sa.sin_port)};
}

}  // namespace

UdpFabric::~UdpFabric() {
  // Sockets normally unbind themselves (Close / crash listener) before
  // the fabric dies; anything left gets its fd reclaimed here.
  for (auto& [socket, binding] : bindings_) {
    loop_->UnwatchFd(binding.fd);
    close(binding.fd);
  }
}

void UdpFabric::AttachHost(sim::Host* host, net::HostAddress interface_ip) {
  CIRCUS_CHECK(!net::IsMulticastHost(interface_ip));
  host_ip_[host->id()] = interface_ip;
}

net::HostAddress UdpFabric::AddressOfHost(sim::Host::HostId id) const {
  auto it = host_ip_.find(id);
  CIRCUS_CHECK_MSG(it != host_ip_.end(), "host not attached");
  return it->second;
}

circus::StatusOr<UdpFabric::Binding> UdpFabric::OpenAndBind(
    net::HostAddress ip, net::Port port) {
  const int fd =
      ::socket(AF_INET, SOCK_DGRAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return circus::Status(circus::ErrorCode::kUnavailable,
                          std::string("socket: ") + std::strerror(errno));
  }
  if (port != 0) {
    sockaddr_in sa = ToSockaddr(net::NetAddress{ip, port});
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) != 0) {
      const int err = errno;
      close(fd);
      if (err == EADDRINUSE) {
        return circus::Status(circus::ErrorCode::kAlreadyExists,
                              "port already bound");
      }
      return circus::Status(circus::ErrorCode::kUnavailable,
                            std::string("bind: ") + std::strerror(err));
    }
    return Binding{fd, net::NetAddress{ip, port}};
  }
  // Port 0: draw from the fabric's ephemeral range ourselves so the
  // range knob (and its exhaustion failure mode) behaves exactly as on
  // the simulated Network.
  if (next_ephemeral_port_ < ephemeral_lo_ ||
      next_ephemeral_port_ > ephemeral_hi_) {
    next_ephemeral_port_ = ephemeral_lo_;
  }
  const int range = ephemeral_hi_ - ephemeral_lo_ + 1;
  for (int attempts = 0; attempts < range; ++attempts) {
    const net::Port p = next_ephemeral_port_++;
    if (next_ephemeral_port_ > ephemeral_hi_) {
      next_ephemeral_port_ = ephemeral_lo_;
    }
    sockaddr_in sa = ToSockaddr(net::NetAddress{ip, p});
    if (::bind(fd, reinterpret_cast<sockaddr*>(&sa), sizeof(sa)) == 0) {
      return Binding{fd, net::NetAddress{ip, p}};
    }
    if (errno != EADDRINUSE) {
      const int err = errno;
      close(fd);
      return circus::Status(circus::ErrorCode::kUnavailable,
                            std::string("bind: ") + std::strerror(err));
    }
  }
  close(fd);
  return circus::Status(circus::ErrorCode::kUnavailable,
                        "ephemeral ports exhausted");
}

circus::StatusOr<net::NetAddress> UdpFabric::Bind(net::DatagramSocket* socket,
                                                  net::Port port) {
  const net::HostAddress ip = AddressOfHost(socket->host()->id());
  circus::StatusOr<Binding> binding = OpenAndBind(ip, port);
  if (!binding.ok()) {
    return binding.status();
  }
  bindings_[socket] = *binding;
  by_address_[binding->local] = socket;
  const int fd = binding->fd;
  loop_->WatchFd(fd, [this, socket] { DrainFd(socket); });
  return binding->local;
}

void UdpFabric::Unbind(net::DatagramSocket* socket) {
  auto it = bindings_.find(socket);
  if (it == bindings_.end()) {
    return;
  }
  loop_->UnwatchFd(it->second.fd);
  close(it->second.fd);
  by_address_.erase(it->second.local);
  bindings_.erase(it);
  for (auto& [group, members] : groups_) {
    members.erase(socket);
  }
}

void UdpFabric::JoinGroup(net::HostAddress group,
                          net::DatagramSocket* socket) {
  CIRCUS_CHECK(net::IsMulticastHost(group));
  groups_[group].insert(socket);
}

void UdpFabric::LeaveGroup(net::HostAddress group,
                           net::DatagramSocket* socket) {
  auto it = groups_.find(group);
  if (it != groups_.end()) {
    it->second.erase(socket);
    if (it->second.empty()) {
      groups_.erase(it);
    }
  }
}

size_t UdpFabric::TotalReceiveBacklog() const {
  size_t total = 0;
  for (const auto& [address, socket] : by_address_) {
    total += socket->queued();
  }
  return total;
}

void UdpFabric::Transmit(sim::Host* sender, net::Datagram datagram) {
  CIRCUS_CHECK_MSG(datagram.payload.size() <= kMaxDatagramBytes,
                   "datagram exceeds network MTU");
  ++stats_.packets_sent;
  stats_.bytes_sent += datagram.payload.size();
  ObserveSend(sender, datagram);
  auto src = by_address_.find(datagram.source);
  if (src == by_address_.end()) {
    // Source socket raced with close; a real kernel would have no fd to
    // send on either.
    ++stats_.send_errors;
    return;
  }
  const int fd = bindings_[src->second].fd;
  auto send_to = [&](net::NetAddress dest) {
    sockaddr_in sa = ToSockaddr(dest);
    const ssize_t n =
        sendto(fd, datagram.payload.data(), datagram.payload.size(), 0,
               reinterpret_cast<sockaddr*>(&sa), sizeof(sa));
    if (n < 0) {
      // Datagram semantics: send failures (full buffers, unreachable)
      // are silent drops to the protocol layers — but backpressure is
      // the one drop cause an operator can act on, so it is counted and
      // published separately.
      const int err = errno;
      ++stats_.send_errors;
      if (err == EAGAIN || err == EWOULDBLOCK || err == ENOBUFS) {
        ++stats_.backpressure;
        if (metrics() != nullptr) {
          metrics()->GetCounter("rt.socket.backpressure")->Increment();
        }
        if (event_bus() != nullptr && event_bus()->active()) {
          obs::Event e;
          e.kind = obs::EventKind::kSocketStall;
          e.host = sender->id();
          e.origin = obs::PackAddress(datagram.source.host,
                                      datagram.source.port);
          e.a = obs::PackAddress(dest.host, dest.port);
          e.c = static_cast<uint64_t>(err);
          event_bus()->Publish(std::move(e));
        }
      }
    }
  };
  if (datagram.destination.is_multicast()) {
    auto it = groups_.find(datagram.destination.host);
    if (it == groups_.end()) {
      return;
    }
    // Emulated multicast: one unicast copy per locally joined socket
    // (see header). The wire carries the group address inside the
    // segment, so receivers observe the same bytes as under real
    // multicast.
    for (net::DatagramSocket* member : it->second) {
      send_to(member->local_address());
    }
    return;
  }
  send_to(datagram.destination);
}

void UdpFabric::DrainFd(net::DatagramSocket* socket) {
  auto it = bindings_.find(socket);
  if (it == bindings_.end()) {
    return;
  }
  const int fd = it->second.fd;
  const net::NetAddress local = it->second.local;
  // Oversized buffer so an over-MTU datagram is detected, not split.
  unsigned char buf[kMaxDatagramBytes + 1];
  for (;;) {
    sockaddr_in sa{};
    socklen_t sa_len = sizeof(sa);
    const ssize_t n = recvfrom(fd, buf, sizeof(buf), 0,
                               reinterpret_cast<sockaddr*>(&sa), &sa_len);
    if (n < 0) {
      // EAGAIN: drained. Anything else: treat like a lost datagram.
      return;
    }
    if (static_cast<size_t>(n) > kMaxDatagramBytes) {
      ++stats_.truncated;
      continue;
    }
    ++stats_.packets_delivered;
    stats_.bytes_delivered += static_cast<uint64_t>(n);
    net::Datagram d;
    d.source = FromSockaddr(sa);
    d.destination = local;
    d.payload.assign(buf, buf + n);
    Deliver(socket, std::move(d));
  }
}

}  // namespace circus::rt
