// Seeded fault schedules: the machine-generated adversary of the chaos
// harness. A Schedule is a timed list of fault actions — host crashes,
// partitions, loss/duplication bursts, latency spikes, clock skew —
// produced as a pure function of one RNG seed, so any failing run is
// reproducible from its seed alone (and printable, so a shrunk schedule
// can be replayed without the generator).
#ifndef SRC_CHAOS_SCHEDULE_H_
#define SRC_CHAOS_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/time.h"

namespace circus::chaos {

enum class FaultKind : uint8_t {
  // Fail-stop crash of the machine under one live troupe member
  // (Section 3.5.1); the Reconfigurer's periodic sweep replaces it.
  kCrashMember,
  // Isolates `island_size` member machines from everyone else for
  // `duration` (Section 4.3.5). Healing heals all layered partitions.
  kPartition,
  // Network-wide loss + duplication burst for `duration` (Section 2.2).
  kLossBurst,
  // Network-wide exponential extra delay for `duration`.
  kLatencySpike,
  // Skews one member machine's local clock for `duration` (the ordered
  // broadcast's synchronized-clock assumption, made adversarial).
  kClockSkew,
};

const char* FaultKindName(FaultKind kind);

struct FaultAction {
  sim::Duration at;        // offset from the start of the schedule
  FaultKind kind = FaultKind::kCrashMember;
  sim::Duration duration;  // zero for instantaneous faults (crash)
  // Victim selection is by rank into the live member list at execution
  // time, so a replayed schedule stays meaningful after membership
  // changes.
  uint32_t victim_rank = 0;
  uint32_t island_size = 1;      // kPartition
  double loss = 0.0;             // kLossBurst
  double duplicate = 0.0;        // kLossBurst
  sim::Duration extra_delay;     // kLatencySpike (exponential mean)
  sim::Duration skew;            // kClockSkew (may be negative)

  std::string ToString() const;
};

struct ScheduleOptions {
  sim::Duration horizon = sim::Duration::Seconds(120);
  sim::Duration min_start = sim::Duration::Seconds(5);
  int actions = 8;
  // Relative weights of the fault kinds; zero disables a kind (the chaos
  // bench uses a crash-only mix to compare against Equation 6.1).
  int crash_weight = 30;
  int partition_weight = 20;
  int loss_weight = 20;
  int latency_weight = 20;
  int skew_weight = 10;
};

struct Schedule {
  uint64_t seed = 0;  // generator seed (0 for hand-built schedules)
  std::vector<FaultAction> actions;

  // Canonical multi-line rendering; two schedules are the same iff their
  // renderings are byte-identical (Digest hashes this form).
  std::string ToString() const;
  uint64_t Digest() const;
};

// Generates the schedule determined by `seed`: same seed, same options —
// byte-identical schedule. Actions come out sorted by time.
Schedule GenerateSchedule(uint64_t seed, const ScheduleOptions& options);

// FNV-1a, the digest primitive shared with the trace digest.
uint64_t HashBytes(uint64_t h, const void* data, size_t n);
inline constexpr uint64_t kFnvOffset = 1469598103934665603ull;

}  // namespace circus::chaos

#endif  // SRC_CHAOS_SCHEDULE_H_
