#include "src/chaos/invariants.h"

#include <algorithm>

#include "src/chaos/schedule.h"
#include "src/common/check.h"
#include "src/model/history.h"

namespace circus::chaos {

void InvariantMonitor::ObservePacket(net::NetAddress source,
                                     net::NetAddress destination) {
  if (destination.is_multicast()) {
    return;
  }
  if (member_addresses_.contains(source) &&
      member_addresses_.contains(destination)) {
    // The join-tail exemption (see AddMemberAddress in the header).
    if (now_nanos_) {
      const int64_t now = now_nanos_();
      auto src = member_since_.find(source);
      auto dst = member_since_.find(destination);
      if ((src != member_since_.end() &&
           now - src->second < kJoinGraceNanos) ||
          (dst != member_since_.end() &&
           now - dst->second < kJoinGraceNanos)) {
        return;
      }
    }
    // Report the first few; a protocol bug here would flood otherwise.
    if (++packet_violations_ <= 3) {
      const int64_t now = now_nanos_ ? now_nanos_() : -1;
      violations_.push_back("member-to-member packet at t=" +
                            std::to_string(now) + "ns: " +
                            source.ToString() + " -> " +
                            destination.ToString());
    }
  }
}

void InvariantMonitor::AddMemberAddress(net::NetAddress address) {
  if (member_addresses_.insert(address).second && now_nanos_) {
    member_since_[address] = now_nanos_();
  }
}

void InvariantMonitor::NoteMemberLaunched(
    int member_serial, const model::TraceRecorder* recorder) {
  MemberObs& obs = members_[member_serial];
  obs.recorder = recorder;
  obs.join_issue = issued_count();
}

int InvariantMonitor::NoteCallIssued(const std::string& thread_key) {
  const int index = issued_count();
  issued_.push_back(IssuedCall{thread_key, false, false, {}});
  issue_of_thread_[thread_key] = index;
  return index;
}

void InvariantMonitor::NoteCallAccepted(int issue_index,
                                        const circus::Bytes& value) {
  CIRCUS_CHECK(issue_index >= 0 && issue_index < issued_count());
  issued_[issue_index].accepted = true;
  issued_[issue_index].accepted_value = value;
}

void InvariantMonitor::NoteCallFailed(int issue_index) {
  CIRCUS_CHECK(issue_index >= 0 && issue_index < issued_count());
  issued_[issue_index].failed = true;
}

void InvariantMonitor::NoteExecution(int member_serial,
                                     const core::ThreadId& thread,
                                     uint32_t thread_seq,
                                     const circus::Bytes& value) {
  MemberObs& obs = members_[member_serial];
  const std::string thread_key = thread.ToString();
  const std::string exec_key =
      thread_key + "#" + std::to_string(thread_seq);
  if (!obs.execution_keys.insert(exec_key).second) {
    violations_.push_back("exactly-once violated: member " +
                          std::to_string(member_serial) + " executed " +
                          exec_key + " twice");
    return;
  }
  auto it = issue_of_thread_.find(thread_key);
  if (it != issue_of_thread_.end()) {
    obs.executed[it->second] = value;
  }
}

void InvariantMonitor::AddViolation(std::string description) {
  violations_.push_back(std::move(description));
}

void InvariantMonitor::ComputeDamage() {
  // Which issue indices were executed by anyone (a call no member ever
  // saw cannot fork anyone's state).
  std::set<int> executed_by_any;
  for (const auto& [serial, obs] : members_) {
    for (const auto& [index, value] : obs.executed) {
      executed_by_any.insert(index);
    }
  }
  for (auto& [serial, obs] : members_) {
    for (int i = obs.join_issue; i < issued_count(); ++i) {
      if (!executed_by_any.contains(i)) {
        continue;
      }
      if (!obs.executed.contains(i)) {
        obs.damage = i;
        break;
      }
    }
  }
  // A member that joined after some other member had already forked may
  // have inherited the forked state through get_state (the transfer
  // donor is whichever member answered, Section 6.4.1); its values
  // cannot be adjudicated, so it is conservatively excluded from the
  // determinism comparison — but keeps its at-most-once obligations.
  for (auto& [serial, obs] : members_) {
    for (const auto& [other_serial, other] : members_) {
      if (other_serial != serial && other.damage.has_value() &&
          *other.damage < obs.join_issue) {
        obs.unverifiable = true;
        break;
      }
    }
  }
}

std::vector<std::string> InvariantMonitor::Finish() {
  CIRCUS_CHECK(!finished_);
  finished_ = true;
  ComputeDamage();

  // Collator soundness: an accepted value must have been computed by at
  // least one member for that very call.
  for (int i = 0; i < issued_count(); ++i) {
    const IssuedCall& call = issued_[i];
    if (!call.accepted) {
      continue;
    }
    bool executed = false;
    bool value_matches = false;
    for (const auto& [serial, obs] : members_) {
      auto it = obs.executed.find(i);
      if (it == obs.executed.end()) {
        continue;
      }
      executed = true;
      if (it->second == call.accepted_value) {
        value_matches = true;
        break;
      }
    }
    if (!executed) {
      violations_.push_back("call " + std::to_string(i) + " (" +
                            call.thread_key +
                            ") accepted but executed by no member");
    } else if (!value_matches) {
      violations_.push_back("collator unsound: call " + std::to_string(i) +
                            " (" + call.thread_key +
                            ") accepted a value no member computed");
    }
  }

  // Global determinism (Section 3.5.2): restrict each member's trace to
  // the calls inside its undamaged window, then compare behaviourally.
  // Missing threads are prefixes (a member that crashed, joined late, or
  // was excluded recorded less, not differently), so allow_prefix holds.
  std::vector<std::unique_ptr<model::TraceRecorder>> filtered;
  std::vector<const model::TraceRecorder*> pointers;
  std::vector<int> serials;
  for (const auto& [serial, obs] : members_) {
    if (obs.recorder == nullptr || obs.unverifiable) {
      continue;
    }
    auto copy = std::make_unique<model::TraceRecorder>();
    const int limit = obs.damage.value_or(issued_count());
    for (const auto& [index, value] : obs.executed) {
      if (index < obs.join_issue || index >= limit) {
        continue;
      }
      const std::string& key = issued_[index].thread_key;
      const model::EventSequence* trace = obs.recorder->TraceOf(key);
      if (trace == nullptr) {
        continue;
      }
      for (const model::Event& e : trace->events()) {
        copy->Record(key, e);
      }
    }
    pointers.push_back(copy.get());
    serials.push_back(serial);
    filtered.push_back(std::move(copy));
  }
  if (std::optional<model::TraceDivergence> divergence =
          model::CompareRecorders(pointers, /*allow_prefix=*/true)) {
    violations_.push_back(
        "replica traces diverge: members " +
        std::to_string(serials[divergence->recorder_a]) + " and " +
        std::to_string(serials[divergence->recorder_b]) + " on thread " +
        divergence->thread_key + " at event " +
        std::to_string(divergence->index) + ": " + divergence->description);
  }

  return violations_;
}

uint64_t InvariantMonitor::TraceDigest() const {
  uint64_t h = kFnvOffset;
  for (const auto& [serial, obs] : members_) {
    h = HashBytes(h, &serial, sizeof(serial));
    if (obs.recorder == nullptr) {
      continue;
    }
    for (const std::string& key : obs.recorder->Threads()) {
      h = HashBytes(h, key.data(), key.size());
      const model::EventSequence* trace = obs.recorder->TraceOf(key);
      for (const model::Event& e : trace->events()) {
        const uint8_t op = static_cast<uint8_t>(e.op);
        h = HashBytes(h, &op, sizeof(op));
        h = HashBytes(h, &e.proc.module, sizeof(e.proc.module));
        h = HashBytes(h, &e.proc.procedure, sizeof(e.proc.procedure));
        h = HashBytes(h, e.val.data(), e.val.size());
      }
    }
  }
  return h;
}

std::optional<int> InvariantMonitor::DamageIndex(int member_serial) const {
  auto it = members_.find(member_serial);
  if (it == members_.end()) {
    return std::nullopt;
  }
  return it->second.damage;
}

}  // namespace circus::chaos
