#include "src/chaos/sweep.h"

#include <cstdio>
#include <utility>

namespace circus::chaos {
namespace {

void LogTo(const SweepOptions& options, const std::string& line) {
  if (options.log) {
    options.log(line);
  } else {
    std::printf("%s\n", line.c_str());
  }
}

}  // namespace

std::pair<Schedule, ChaosReport> ShrinkSchedule(
    const Schedule& schedule, const HarnessOptions& harness) {
  Schedule current = schedule;
  ChaosReport current_report = RunChaos(current, harness);
  if (current_report.ok()) {
    // Not reproducible as handed to us (should not happen with a
    // deterministic harness); nothing to shrink.
    return {current, current_report};
  }
  bool shrunk = true;
  while (shrunk && !current.actions.empty()) {
    shrunk = false;
    for (size_t i = 0; i < current.actions.size(); ++i) {
      Schedule candidate = current;
      candidate.actions.erase(candidate.actions.begin() + i);
      ChaosReport report = RunChaos(candidate, harness);
      if (!report.ok()) {
        current = std::move(candidate);
        current_report = std::move(report);
        shrunk = true;
        break;  // restart the deletion scan on the smaller schedule
      }
    }
  }
  return {current, current_report};
}

SweepResult RunSweep(const SweepOptions& options) {
  SweepResult result;
  for (int i = 0; i < options.seeds; ++i) {
    const uint64_t seed = options.first_seed + static_cast<uint64_t>(i);
    Schedule schedule = GenerateSchedule(seed, options.schedule);
    HarnessOptions harness = options.harness;
    harness.seed = seed;
    ChaosReport report = RunChaos(schedule, harness);
    ++result.seeds_run;
    if (report.ok()) {
      continue;
    }
    ++result.seeds_failed;
    LogTo(options, "chaos: seed " + std::to_string(seed) + " FAILED\n" +
                       schedule.ToString() + "\n" + report.Summary());
    SweepFailure failure;
    failure.seed = seed;
    failure.schedule = schedule;
    failure.report = report;
    if (options.shrink_failures) {
      std::pair<Schedule, ChaosReport> minimal =
          ShrinkSchedule(schedule, harness);
      failure.minimal = std::move(minimal.first);
      failure.minimal_report = std::move(minimal.second);
      LogTo(options,
            "chaos: seed " + std::to_string(seed) + " minimal reproducer (" +
                std::to_string(failure.minimal.actions.size()) + " of " +
                std::to_string(schedule.actions.size()) + " actions)\n" +
                failure.minimal.ToString() + "\n" +
                failure.minimal_report.Summary());
    } else {
      failure.minimal = schedule;
      failure.minimal_report = report;
    }
    result.failures.push_back(std::move(failure));
    if (result.seeds_failed >= options.max_failures) {
      LogTo(options, "chaos: stopping after " +
                         std::to_string(result.seeds_failed) +
                         " failing seeds");
      break;
    }
  }
  return result;
}

}  // namespace circus::chaos
