// Nemesis: the coroutine that executes a fault schedule against a
// running World. It sleeps on its own (never-crashed) host between
// actions, so World teardown reaps it, and resolves each action's victim
// against the live member list at execution time. Interval faults
// (partition, loss, latency, skew) are reverted `duration` later through
// an executor callback; overlapping reverts restore the harness baseline
// (HealPartitions heals layered partitions wholesale — refinement can be
// stacked but not selectively undone, matching the network model).
#ifndef SRC_CHAOS_NEMESIS_H_
#define SRC_CHAOS_NEMESIS_H_

#include <functional>
#include <vector>

#include "src/chaos/schedule.h"
#include "src/net/world.h"
#include "src/sim/host.h"
#include "src/sim/task.h"

namespace circus::chaos {

struct NemesisTargets {
  net::World* world = nullptr;
  // Hosts of the currently live troupe members, in a stable order.
  std::function<std::vector<sim::Host*>()> member_hosts;
  // The fault plan interval faults revert to.
  net::FaultPlan baseline;
};

class Nemesis {
 public:
  Nemesis(NemesisTargets targets, sim::Host* host)
      : targets_(std::move(targets)), host_(host) {}
  Nemesis(const Nemesis&) = delete;
  Nemesis& operator=(const Nemesis&) = delete;

  // Executes the schedule from "now"; spawn on the nemesis host. The
  // Nemesis object must outlive the run (revert callbacks reference it).
  sim::Task<void> Run(Schedule schedule);

  int faults_applied() const { return faults_applied_; }
  int crashes_injected() const { return crashes_injected_; }

 private:
  // Applies one action and returns its revert (nullptr for
  // instantaneous faults).
  std::function<void()> Apply(const FaultAction& action);

  NemesisTargets targets_;
  sim::Host* host_;
  int faults_applied_ = 0;
  int crashes_injected_ = 0;
};

}  // namespace circus::chaos

#endif  // SRC_CHAOS_NEMESIS_H_
