// The chaos harness: builds a full Circus stack — Ringmaster, binding
// agent with a Reconfigurer, a machine pool, a transactional troupe and
// an unreplicated client — runs a fault Schedule against it through a
// Nemesis, and checks the paper's invariants with an InvariantMonitor
// the whole way through.
//
// The client collates with an explicit majority collator (the
// Section 7.4 explicit-replication style of the Section 4.3.5
// quorum-unanimous rule) and acts on what the collator reveals: a member
// whose reply diverges from an accepted quorum has forked its state and
// is fail-stopped so the Reconfigurer replaces it — the
// watchdog-triggered repair of Section 4.3.4, driven from the client
// side. The maintenance sweep likewise compares members' externalized
// state directly (two consecutive strikes, so a snapshot racing an
// in-flight call is never acted on) and retires persistent minorities.
// Everything is a pure function of the World seed: one RunChaos with the
// same Schedule and options reproduces byte-identical digests.
#ifndef SRC_CHAOS_HARNESS_H_
#define SRC_CHAOS_HARNESS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/chaos/schedule.h"
#include "src/obs/event.h"
#include "src/obs/metrics.h"
#include "src/sim/time.h"

namespace circus::chaos {

struct HarnessOptions {
  uint64_t seed = 1;        // World seed (executor, network, processes)
  int troupe_size = 3;      // the paper's worked example (Section 6.4.2)
  // Candidate machines beyond the initial troupe; 0 means "enough for
  // every possible crash and repair in the schedule".
  int spare_machines = 0;

  sim::Duration warmup = sim::Duration::Seconds(40);
  sim::Duration run_length = sim::Duration::Seconds(120);
  sim::Duration settle_length = sim::Duration::Seconds(90);

  sim::Duration call_period = sim::Duration::Seconds(2);
  sim::Duration sweep_period = sim::Duration::Seconds(15);

  bool with_transactions = false;
  sim::Duration txn_period = sim::Duration::Seconds(7);

  // Kill members whose state provably diverged (see header comment).
  // Off, a partition-forked member lingers and the run may legitimately
  // never re-converge; the default workload keeps it on.
  bool repair_divergence = true;

  // First-come collation instead of the majority collator: a call
  // succeeds iff any member answers, which is exactly the availability
  // semantics Equation 6.1 models (bench_chaos uses this; the tests
  // keep the stricter quorum client).
  bool first_come_calls = false;

  // Wire-level oracle: mirror every datagram into an in-memory capture
  // (World::CapturePackets) and replay it through the Section 4.2 wire
  // auditor (src/obs/wire.h) at the end of the run; auditor findings
  // join the monitor's violations prefixed "wire: ".
  bool audit_wire = true;

  // Negative-test knobs: each plants one specific bug the monitor must
  // catch (used by chaos_test and the shrinker's self-check).
  bool broken_collator = false;         // accepts a mangled reply value
  bool nondeterministic_member = false;  // member serial 1 computes wrong
  // Members stop suppressing duplicates: the msg layer forgets
  // completed exchanges and the core layer re-answers a redelivered
  // call with a mangled return that reuses the call number — the wire
  // auditor (audit_wire) must flag the reuse when a schedule injects
  // duplicate faults.
  bool duplicate_delivery_bug = false;

  // Observability. The harness always routes its monitor and recorders
  // through the World's event bus; these knobs additionally capture the
  // full event stream. collect_events copies it into ChaosReport.events;
  // a non-empty path writes the Chrome trace_event JSON / JSONL export
  // there at the end of the run.
  bool collect_events = false;
  std::string trace_json_path;
  std::string trace_jsonl_path;
};

struct ChaosReport {
  uint64_t schedule_digest = 0;
  uint64_t trace_digest = 0;

  int calls_issued = 0;
  int calls_accepted = 0;
  int calls_failed = 0;
  int txns_ok = 0;
  int txns_failed = 0;

  int faults_applied = 0;
  int crashes_injected = 0;
  int members_launched = 0;
  int suspects_killed = 0;

  std::vector<std::string> violations;

  // The run's full event stream (only when options.collect_events) and
  // the final metrics snapshot (always).
  std::vector<obs::Event> events;
  obs::MetricsRegistry::Snapshot metrics;

  bool ok() const { return violations.empty(); }
  std::string Summary() const;
};

// Runs `schedule` against a fresh world built from `options`. Blocking;
// the simulation runs warmup + chaos + settle + final checks to
// completion before this returns.
ChaosReport RunChaos(const Schedule& schedule, const HarnessOptions& options);

}  // namespace circus::chaos

#endif  // SRC_CHAOS_HARNESS_H_
