// Seed-sweep driver: runs the chaos harness over a range of schedule
// seeds, collects the runs whose invariants fail, and shrinks each
// failing schedule to a minimal reproducer by greedily deleting actions
// while the failure persists (delta debugging over the action list —
// everything is deterministic, so a candidate either reproduces or it
// does not).
#ifndef SRC_CHAOS_SWEEP_H_
#define SRC_CHAOS_SWEEP_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/chaos/harness.h"
#include "src/chaos/schedule.h"

namespace circus::chaos {

struct SweepOptions {
  uint64_t first_seed = 1;
  int seeds = 100;
  ScheduleOptions schedule;
  HarnessOptions harness;  // per-run `seed` is overwritten by the sweep
  bool shrink_failures = true;
  // Stop early after this many failing seeds (a systemic bug fails
  // everywhere; no point re-diagnosing it 100 times).
  int max_failures = 3;
  // Progress / reproducer sink; defaults to stdout when null.
  std::function<void(const std::string&)> log;
};

struct SweepFailure {
  uint64_t seed = 0;
  Schedule schedule;        // the generated schedule that failed
  ChaosReport report;       // its report
  Schedule minimal;         // shrunk reproducer (== schedule if disabled)
  ChaosReport minimal_report;
};

struct SweepResult {
  int seeds_run = 0;
  int seeds_failed = 0;
  std::vector<SweepFailure> failures;
  bool ok() const { return failures.empty(); }
};

// Runs RunChaos(GenerateSchedule(seed), harness-with-that-seed) for each
// seed in [first_seed, first_seed + seeds).
SweepResult RunSweep(const SweepOptions& options);

// Greedy one-action-at-a-time deletion until no single deletion still
// fails; returns the minimal schedule and its report.
std::pair<Schedule, ChaosReport> ShrinkSchedule(const Schedule& schedule,
                                                const HarnessOptions& harness);

}  // namespace circus::chaos

#endif  // SRC_CHAOS_SWEEP_H_
