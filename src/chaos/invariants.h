// InvariantMonitor: continuously checks the paper's correctness claims
// while a chaos schedule runs against a live troupe, and performs the
// end-of-run analyses:
//
//  * no member-to-member packets, ever (Section 4.3.3) — checked on
//    every send through the network's packet observer (the get_state
//    transfer of a joining-but-not-yet-registered replacement is the one
//    sanctioned exception, Section 6.4.1, and is excluded by only
//    watching registered members);
//  * at-most-once execution per (member, thread, sequence) — duplicate
//    suppression must hold through duplication bursts, retransmit storms
//    and partition heals (Section 4.2.1);
//  * collator soundness: every value the client accepted is a value some
//    member actually computed for that call (Section 4.3.6);
//  * global determinism of replica traces (Section 3.5.2), via
//    model::CompareRecorders over per-member recorders restricted to
//    each member's undamaged window — a member that a partition cut off
//    while an accepted call completed without it has legitimately forked
//    from the troupe (the Section 4.3.5 divergence caveat) and is
//    excluded from the comparison from that call onward;
//  * eventual convergence after heal: the final fresh-cache call and the
//    final membership health check are reported here by the harness.
#ifndef SRC_CHAOS_INVARIANTS_H_
#define SRC_CHAOS_INVARIANTS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/core/types.h"
#include "src/model/recorder.h"
#include "src/net/network.h"

namespace circus::chaos {

class InvariantMonitor {
 public:
  InvariantMonitor() = default;
  InvariantMonitor(const InvariantMonitor&) = delete;
  InvariantMonitor& operator=(const InvariantMonitor&) = delete;

  // ---- wiring -----------------------------------------------------------
  // Simulation clock, used to time-stamp member registrations. Must be
  // set before AddMemberAddress for the join-tail grace to work.
  void SetClock(std::function<int64_t()> now_nanos) {
    now_nanos_ = std::move(now_nanos);
  }
  // Called for every send operation. The address-pair form is what a
  // kPacketSend bus subscription feeds (the harness's wiring); the
  // Datagram form delegates to it for direct packet-observer use.
  void ObservePacket(net::NetAddress source, net::NetAddress destination);
  void ObservePacket(const net::Datagram& datagram) {
    ObservePacket(datagram.source, datagram.destination);
  }
  // Marks `address` as a registered troupe member for the
  // member-to-member check. Idempotent; members stay in the set after
  // crash or removal (an orphan must not talk to members either).
  // Packets touching a member registered less than kJoinGraceNanos ago
  // are exempt: the get_state transfer the member made just before
  // registering (Section 6.4.1) leaves a bounded retransmit/probe tail
  // on its paired endpoints.
  void AddMemberAddress(net::NetAddress address);

  static constexpr int64_t kJoinGraceNanos = 10'000'000'000;  // 10 s

  // Announces a launched member. `recorder` must outlive the monitor's
  // Finish(); the join index (the count of calls issued so far) is
  // captured now — before the member's get_state transfer — so any call
  // racing the non-atomic join window (Section 6.4.1) falls inside the
  // member's checked range and at worst conservatively damages it.
  void NoteMemberLaunched(int member_serial,
                          const model::TraceRecorder* recorder);

  // ---- workload events --------------------------------------------------
  // The client is about to issue the call carried by `thread_key`;
  // returns the call's global issue index.
  int NoteCallIssued(const std::string& thread_key);
  void NoteCallAccepted(int issue_index, const circus::Bytes& value);
  void NoteCallFailed(int issue_index);
  int issued_count() const { return static_cast<int>(issued_.size()); }

  // A member executed a procedure for (thread, seq), producing `value`.
  // Feeds at-most-once, collator soundness, and damage analysis.
  void NoteExecution(int member_serial, const core::ThreadId& thread,
                     uint32_t thread_seq, const circus::Bytes& value);

  // ---- out-of-band findings (harness-driven checks) ---------------------
  void AddViolation(std::string description);

  // ---- end of run -------------------------------------------------------
  // Runs the end-of-run analyses (soundness, damage, CompareRecorders)
  // and returns every violation found. Call once, after the simulation
  // has fully drained.
  std::vector<std::string> Finish();

  // Digest over every member's full recorded trace, in launch order;
  // byte-identical across runs iff the runs behaved identically.
  uint64_t TraceDigest() const;

  // Damage indices per member serial (nullopt = never damaged); only
  // meaningful after Finish(). Exposed for the harness's final
  // agreement check and for tests.
  std::optional<int> DamageIndex(int member_serial) const;

 private:
  struct IssuedCall {
    std::string thread_key;
    bool accepted = false;
    bool failed = false;
    circus::Bytes accepted_value;
  };
  struct MemberObs {
    const model::TraceRecorder* recorder = nullptr;
    int join_issue = 0;
    // issue index -> value produced (tracked workload calls only).
    std::map<int, circus::Bytes> executed;
    // at-most-once bookkeeping over every call, tracked or not.
    std::set<std::string> execution_keys;
    std::optional<int> damage;    // first missed-but-executed-elsewhere
    bool unverifiable = false;    // joined after another member forked
  };

  void ComputeDamage();

  std::function<int64_t()> now_nanos_;
  std::map<net::NetAddress, int64_t> member_since_;
  std::set<net::NetAddress> member_addresses_;
  std::map<int, MemberObs> members_;  // by serial
  std::vector<IssuedCall> issued_;
  std::map<std::string, int> issue_of_thread_;
  std::vector<std::string> violations_;
  int packet_violations_ = 0;
  bool finished_ = false;
};

}  // namespace circus::chaos

#endif  // SRC_CHAOS_INVARIANTS_H_
