#include "src/chaos/nemesis.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/net/network.h"
#include "src/sim/executor.h"

namespace circus::chaos {

sim::Task<void> Nemesis::Run(Schedule schedule) {
  std::stable_sort(schedule.actions.begin(), schedule.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.at < y.at;
                   });
  const sim::TimePoint start = targets_.world->now();
  for (const FaultAction& action : schedule.actions) {
    const sim::TimePoint when = start + action.at;
    if (when > targets_.world->now()) {
      co_await host_->SleepFor(when - targets_.world->now());
    }
    std::function<void()> revert = Apply(action);
    ++faults_applied_;
    if (revert != nullptr) {
      targets_.world->executor().ScheduleAfter(action.duration,
                                               std::move(revert));
    }
  }
}

std::function<void()> Nemesis::Apply(const FaultAction& action) {
  CIRCUS_CHECK(targets_.world != nullptr);
  net::Network& network = targets_.world->network();
  std::vector<sim::Host*> members = targets_.member_hosts();
  switch (action.kind) {
    case FaultKind::kCrashMember: {
      if (members.empty()) {
        return nullptr;
      }
      sim::Host* victim = members[action.victim_rank % members.size()];
      victim->Crash();
      ++crashes_injected_;
      return nullptr;
    }
    case FaultKind::kPartition: {
      if (members.empty()) {
        return nullptr;
      }
      // Cut `island_size` members off from everyone else. Clamped so at
      // least one member stays on each side when the troupe allows it.
      const uint32_t size = std::clamp<uint32_t>(
          action.island_size, 1,
          static_cast<uint32_t>(std::max<size_t>(1, members.size() - 1)));
      std::vector<sim::Host::HostId> island;
      for (uint32_t k = 0; k < size; ++k) {
        island.push_back(
            members[(action.victim_rank + k) % members.size()]->id());
      }
      net::Network* net_ptr = &network;
      network.Partition(island);
      // HealPartitions clears every layered partition, including ones a
      // later overlapping action added; the settle phase re-heals at the
      // end, so overlap only shortens the adversary's own faults.
      return [net_ptr] { net_ptr->HealPartitions(); };
    }
    case FaultKind::kLossBurst: {
      net::FaultPlan plan = targets_.baseline;
      plan.loss_probability = action.loss;
      plan.duplicate_probability = action.duplicate;
      network.set_default_fault_plan(plan);
      net::Network* net_ptr = &network;
      net::FaultPlan baseline = targets_.baseline;
      return [net_ptr, baseline] { net_ptr->set_default_fault_plan(baseline); };
    }
    case FaultKind::kLatencySpike: {
      net::FaultPlan plan = targets_.baseline;
      plan.mean_extra_delay = action.extra_delay;
      network.set_default_fault_plan(plan);
      net::Network* net_ptr = &network;
      net::FaultPlan baseline = targets_.baseline;
      return [net_ptr, baseline] { net_ptr->set_default_fault_plan(baseline); };
    }
    case FaultKind::kClockSkew: {
      if (members.empty()) {
        return nullptr;
      }
      sim::Host* victim = members[action.victim_rank % members.size()];
      victim->set_clock_skew(action.skew);
      // Safe even if the victim crashed (or was replaced) meanwhile:
      // hosts are owned by the World and skew is plain machine state.
      return [victim] { victim->set_clock_skew(sim::Duration::Zero()); };
    }
  }
  return nullptr;
}

}  // namespace circus::chaos
