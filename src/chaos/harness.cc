#include "src/chaos/harness.h"

#include <map>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "src/binding/client.h"
#include "src/binding/deploy.h"
#include "src/binding/reconfigurer.h"
#include "src/chaos/invariants.h"
#include "src/chaos/nemesis.h"
#include "src/common/check.h"
#include "src/config/parser.h"
#include "src/core/collator.h"
#include "src/core/process.h"
#include "src/marshal/marshal.h"
#include "src/model/bus_tap.h"
#include "src/net/world.h"
#include "src/obs/bus.h"
#include "src/obs/export.h"
#include "src/obs/wire.h"
#include "src/txn/commit.h"

namespace circus::chaos {
namespace {

using binding::BindingCache;
using binding::BindingClient;
using binding::ReconfigReport;
using binding::Reconfigurer;
using core::CallOptions;
using core::ModuleNumber;
using core::ProcedureNumber;
using core::RpcProcess;
using core::ServerCallContext;
using core::ThreadId;
using core::Troupe;
using sim::Duration;
using sim::Task;

constexpr const char* kTroupeName = "chaos";
constexpr ProcedureNumber kCounterProc = 10;
constexpr ProcedureNumber kTxnAddProc = 11;

// What the majority collator learned from the last call, shared between
// the collator closure and the client loop that acts on it.
struct CollatorScratch {
  int quorum = 2;
  bool mangle = false;  // the planted broken-collator bug
  // True when a quorum of members replied Ok but no value reached the
  // quorum: the troupe itself is split.
  bool disagreement = false;
  // Process addresses of members whose Ok reply fell outside the
  // accepted (or, on a split, the kept) value class.
  std::vector<net::NetAddress> divergent;
};

struct MemberRec {
  int serial = 0;
  sim::Host* host = nullptr;
  std::unique_ptr<model::TraceRecorder> recorder;
  std::unique_ptr<RpcProcess> process;
  std::unique_ptr<txn::TransactionalServer> server;
  ModuleNumber module = 0;
  int64_t counter = 0;
};

struct Harness {
  // Declaration order is destruction-order-critical: the World must be
  // declared first so it is destroyed last (its destructor crashes the
  // hosts and drains every protocol coroutine before anything they
  // reference goes away).
  net::World world;
  HarnessOptions opts;
  InvariantMonitor monitor;
  // Both observers live on the World's event bus: the tap rebuilds the
  // members' determinism-check recorders from call events, and the
  // monitor's packet check subscribes to kPacketSend (below).
  model::BusRecorderTap tap;
  obs::EventBus::SubscriberId monitor_sub = 0;

  binding::RingmasterDeployment ring;
  config::MachineDatabase database;
  std::map<config::MachineId, sim::Host*> machine_host;

  sim::Host* agent_host = nullptr;
  std::unique_ptr<RpcProcess> agent_process;
  std::unique_ptr<BindingClient> agent_binding;
  std::unique_ptr<Reconfigurer> reconfigurer;

  std::vector<std::unique_ptr<MemberRec>> members;
  std::map<net::NetAddress, MemberRec*> member_of_address;
  std::vector<net::NetAddress> current_members;  // last registry lookup
  ModuleNumber module_number = 0;

  sim::Host* client_host = nullptr;
  std::unique_ptr<RpcProcess> client_process;
  std::unique_ptr<BindingClient> client_binding;
  std::unique_ptr<BindingCache> client_cache;
  std::unique_ptr<txn::CommitCoordinator> coordinator;
  std::shared_ptr<CollatorScratch> scratch;
  CallOptions call_opts;  // majority collation, reused for every call

  sim::Host* nemesis_host = nullptr;
  net::FaultPlan baseline;
  std::unique_ptr<Nemesis> nemesis;

  // Two-strike bookkeeping of the sweep-time state-agreement check.
  std::set<net::NetAddress> state_suspects;

  int calls_accepted = 0;
  int calls_failed = 0;
  int txns_ok = 0;
  int txns_failed = 0;
  int members_launched = 0;
  int suspects_killed = 0;
  bool stop_workload = false;
  bool final_checks_done = false;

  explicit Harness(const HarnessOptions& options);
  ~Harness();
};

// ---------------------------------------------------------------------
// Majority collation (Section 4.3.5 via the Section 7.4 escape hatch).

Task<StatusOr<Bytes>> MajorityCollate(
    core::ReplyStream& stream, std::shared_ptr<CollatorScratch> scratch) {
  scratch->disagreement = false;
  scratch->divergent.clear();
  std::vector<core::Reply> oks;
  std::optional<Status> stale;
  std::optional<Status> failure;
  for (;;) {
    std::optional<core::Reply> reply = co_await stream.Next();
    if (!reply.has_value()) {
      break;
    }
    if (reply->result.ok()) {
      oks.push_back(*reply);
    } else if (reply->result.status().code() == ErrorCode::kStaleBinding) {
      stale = reply->result.status();
    } else {
      failure = reply->result.status();
    }
  }
  const int quorum = scratch->quorum;

  // Group identical reply values; std::map keeps the grouping (and with
  // it every downstream decision) deterministic.
  std::map<Bytes, std::vector<net::NetAddress>> classes;
  for (const core::Reply& r : oks) {
    classes[*r.result].push_back(r.member.process);
  }
  const Bytes* winner = nullptr;
  size_t winner_size = 0;
  for (const auto& [value, who] : classes) {
    if (who.size() > winner_size) {
      winner = &value;
      winner_size = who.size();
    }
  }

  if (winner != nullptr && static_cast<int>(winner_size) >= quorum) {
    for (const auto& [value, who] : classes) {
      if (&value == winner) {
        continue;
      }
      for (const net::NetAddress& a : who) {
        scratch->divergent.push_back(a);
      }
    }
    Bytes result = *winner;
    if (scratch->mangle && !result.empty()) {
      result[0] ^= 0x5a;  // accept a value no member computed
    }
    co_return result;
  }

  if (static_cast<int>(oks.size()) >= quorum) {
    // Enough members answered, but they answered differently: the
    // troupe is split with no majority side. Keep the class containing
    // the lowest member address (a deterministic tie-break for the
    // repair path) and report everyone else as divergent.
    scratch->disagreement = true;
    const std::vector<net::NetAddress>* keep = nullptr;
    net::NetAddress keep_low;
    for (const auto& [value, who] : classes) {
      net::NetAddress low = *std::min_element(who.begin(), who.end());
      if (keep == nullptr || low < keep_low) {
        keep = &who;
        keep_low = low;
      }
    }
    for (const auto& [value, who] : classes) {
      if (&who == keep) {
        continue;
      }
      for (const net::NetAddress& a : who) {
        scratch->divergent.push_back(a);
      }
    }
    co_return Status(ErrorCode::kNoMajority, "replies split " +
                                                 std::to_string(oks.size()) +
                                                 " ways, no quorum value");
  }
  if (stale.has_value()) {
    co_return *stale;
  }
  if (failure.has_value()) {
    co_return *failure;
  }
  co_return Status(ErrorCode::kUnavailable, "quorum unreachable");
}

// Non-coroutine factory (contributor notes, hard rule 1): builds the
// std::function outside any co_await statement.
core::Collator MakeMajorityCollator(std::shared_ptr<CollatorScratch> s) {
  return [s](core::ReplyStream& stream) { return MajorityCollate(stream, s); };
}

// ---------------------------------------------------------------------
// Member module.

void InstallMemberProcedures(Harness* h, MemberRec* m) {
  m->server->ExportProcedure(
      kCounterProc,
      [h, m](ServerCallContext& ctx, const Bytes&) -> Task<StatusOr<Bytes>> {
        int64_t value = ++m->counter;
        if (h->opts.nondeterministic_member && m->serial == 1) {
          value += 1000000;  // the planted determinism bug
        }
        marshal::Writer w;
        w.WriteI64(value);
        Bytes out = w.Take();
        h->monitor.NoteExecution(m->serial, ctx.thread, ctx.thread_seq, out);
        co_return out;
      });
  m->server->ExportProcedure(
      kTxnAddProc,
      [m](ServerCallContext&, const Bytes& args) -> Task<StatusOr<Bytes>> {
        marshal::Reader r(args);
        const txn::TxnId txn = txn::TxnId::Read(r);
        const std::string key = r.ReadString();
        const int64_t delta = r.ReadI64();
        if (!r.AtEnd()) {
          co_return Status(ErrorCode::kProtocolError, "bad add args");
        }
        m->server->store().Begin(txn);
        int64_t current = 0;
        StatusOr<Bytes> existing = co_await m->server->store().Get(txn, key);
        if (existing.ok()) {
          marshal::Reader vr(*existing);
          current = vr.ReadI64();
        } else if (existing.status().code() != ErrorCode::kNotFound) {
          co_return existing.status();
        }
        marshal::Writer w;
        w.WriteI64(current + delta);
        Status put = co_await m->server->store().Put(txn, key, w.Take());
        if (!put.ok()) {
          co_return put;
        }
        marshal::Writer out;
        out.WriteI64(current + delta);
        co_return out.Take();
      });
}

StatusOr<Reconfigurer::LaunchedMember> LaunchMember(Harness* h,
                                                    sim::Host* host) {
  auto rec = std::make_unique<MemberRec>();
  MemberRec* m = rec.get();
  h->members.push_back(std::move(rec));
  m->serial = h->members_launched++;
  m->host = host;
  m->recorder = std::make_unique<model::TraceRecorder>();
  // Ports are per-serial: a failed join (e.g. get_state hit divergent
  // donors) leaves the abandoned process's socket bound, and a later
  // sweep may legitimately pick the same machine again.
  core::RpcOptions member_rpc;
  if (h->opts.duplicate_delivery_bug) {
    // The planted duplicate-delivery bug needs both layers broken: the
    // endpoint must redeliver duplicates (no completed-exchange
    // history) and the core must re-answer them with a mangled return.
    member_rpc.endpoint.completed_history_per_peer = 0;
    member_rpc.redeliver_duplicates_bug = true;
  }
  m->process = std::make_unique<RpcProcess>(
      &h->world.network(), host,
      static_cast<net::Port>(9000 + m->serial), member_rpc);
  // Recorded via the bus tap, not SetTraceRecorder: the determinism
  // check consumes the same event stream every other observer sees.
  const net::NetAddress address = m->process->process_address();
  h->tap.Attach(obs::PackAddress(address.host, address.port),
                m->recorder.get());
  m->server =
      std::make_unique<txn::TransactionalServer>(m->process.get(), kTroupeName);
  m->module = m->server->module_number();
  h->module_number = m->module;
  InstallMemberProcedures(h, m);
  // Full member state is the counter plus the transactional store; the
  // combined form feeds both get_state transfer and the sweep-time
  // state-agreement check.
  m->process->SetStateProvider(m->module, [m] {
    marshal::Writer w;
    w.WriteI64(m->counter);
    w.WriteBytes(m->server->store().ExternalizeState());
    return w.Take();
  });
  h->member_of_address[m->process->process_address()] = m;
  // Registered with the monitor before the get_state transfer: a call
  // racing the non-atomic join window (Section 6.4.1) lands inside the
  // member's checked range and at worst conservatively damages it.
  h->monitor.NoteMemberLaunched(m->serial, m->recorder.get());

  Reconfigurer::LaunchedMember launched;
  launched.process = m->process.get();
  launched.module = m->module;
  launched.accept_state = [m](const Bytes& state) {
    marshal::Reader r(state);
    m->counter = r.ReadI64();
    const Bytes store_state = r.ReadBytes();
    m->server->store().InternalizeState(store_state);
  };
  return launched;
}

// ---------------------------------------------------------------------
// Harness construction.

std::string SpecFor(int n) {
  std::string vars;
  std::string where;
  for (int i = 0; i < n; ++i) {
    const std::string v = "m" + std::to_string(i);
    vars += (i ? ", " : "") + v;
    where += (i ? " and " : "") + v + ".memory >= 1";
  }
  return "troupe (" + vars + ") where " + where;
}

Harness::Harness(const HarnessOptions& options)
    : world(options.seed, sim::SyscallCostModel::Free()),
      opts(options),
      tap(&world.bus()) {
  if (opts.audit_wire) {
    // Ring-only capture (no path): every datagram of the run, audited
    // against the Section 4.2 wire rules at the end of RunChaos.
    world.CapturePackets();
  }
  ring = binding::DeployRingmaster(world, world.AddHosts("ring", 1));

  const int pool = opts.troupe_size + opts.spare_machines;
  for (int i = 0; i < pool; ++i) {
    sim::Host* host = world.AddHost("pool" + std::to_string(i));
    const config::MachineId id = database.AddMachine(
        {{"name", config::Value(std::string("pool") + std::to_string(i))},
         {"memory", config::Value(8.0)}});
    machine_host[id] = host;
  }

  agent_host = world.AddHost("agent");
  agent_process =
      std::make_unique<RpcProcess>(&world.network(), agent_host, 8100);
  agent_binding = std::make_unique<BindingClient>(agent_process.get(),
                                                  ring.troupe);
  reconfigurer = std::make_unique<Reconfigurer>(agent_process.get(),
                                                agent_binding.get(), &database);
  StatusOr<config::TroupeSpec> spec =
      config::ParseTroupeSpec(SpecFor(opts.troupe_size));
  CIRCUS_CHECK(spec.ok());
  Harness* self = this;
  reconfigurer->Manage(
      kTroupeName, std::move(*spec),
      [self](config::MachineId machine)
          -> StatusOr<Reconfigurer::LaunchedMember> {
        auto it = self->machine_host.find(machine);
        if (it == self->machine_host.end() || !it->second->up()) {
          return Status(ErrorCode::kUnavailable, "machine gone");
        }
        return LaunchMember(self, it->second);
      });

  client_host = world.AddHost("client");
  client_process =
      std::make_unique<RpcProcess>(&world.network(), client_host, 8200);
  client_binding = std::make_unique<BindingClient>(client_process.get(),
                                                   ring.troupe);
  client_cache = std::make_unique<BindingCache>(client_binding.get());
  client_process->SetClientTroupeResolver(client_cache->MakeResolver());
  coordinator = std::make_unique<txn::CommitCoordinator>(client_process.get());

  scratch = std::make_shared<CollatorScratch>();
  scratch->quorum = opts.troupe_size / 2 + 1;
  scratch->mangle = opts.broken_collator;
  if (opts.first_come_calls) {
    call_opts.collation = core::Collation::kFirstCome;
  } else {
    call_opts.custom_collator = MakeMajorityCollator(scratch);
  }

  nemesis_host = world.AddHost("nemesis");
  baseline = world.network().default_fault_plan();

  net::World* world_ptr = &world;
  monitor.SetClock([world_ptr] { return world_ptr->now().nanos(); });
  InvariantMonitor* monitor_ptr = &monitor;
  monitor_sub = world.bus().Subscribe([monitor_ptr](const obs::Event& e) {
    if (e.kind != obs::EventKind::kPacketSend) {
      return;
    }
    monitor_ptr->ObservePacket(
        net::NetAddress{obs::PackedAddressHost(e.a),
                        obs::PackedAddressPort(e.a)},
        net::NetAddress{obs::PackedAddressHost(e.b),
                        obs::PackedAddressPort(e.b)});
  });
}

Harness::~Harness() { world.bus().Unsubscribe(monitor_sub); }

// ---------------------------------------------------------------------
// Repair: fail-stop a member whose state provably forked, so the
// Reconfigurer replaces it with a copy of the surviving lineage.

void KillMember(Harness* h, net::NetAddress address, const char* why) {
  if (!h->opts.repair_divergence) {
    return;
  }
  auto it = h->member_of_address.find(address);
  if (it == h->member_of_address.end() || !it->second->host->up()) {
    return;
  }
  (void)why;
  it->second->host->Crash();
  ++h->suspects_killed;
}

void RepairFromScratch(Harness* h, bool accepted, int* split_strikes) {
  if (accepted) {
    *split_strikes = 0;
    // Members outside an accepted quorum have provably forked.
    for (const net::NetAddress& a : h->scratch->divergent) {
      KillMember(h, a, "diverged from accepted quorum");
    }
    return;
  }
  if (!h->scratch->disagreement) {
    *split_strikes = 0;  // unreachable/stale — no divergence evidence
    return;
  }
  // A split with no majority cannot repair itself (no side can win a
  // quorum); after two consecutive splits, retire every class but the
  // deterministically kept one.
  if (++*split_strikes >= 2) {
    *split_strikes = 0;
    for (const net::NetAddress& a : h->scratch->divergent) {
      KillMember(h, a, "split-brain tie-break");
    }
  }
}

// ---------------------------------------------------------------------
// Workload loops (free coroutines; all state passed via Harness*).

Task<void> ClientCallLoop(Harness* h) {
  int split_strikes = 0;
  for (;;) {
    co_await h->client_host->SleepFor(h->opts.call_period);
    if (h->stop_workload) {
      co_return;
    }
    bool accepted = false;
    // Each attempt is its own root thread and its own tracked call:
    // after a rebind the retry is a genuinely new call (new call
    // number), and the monitor's per-call damage accounting needs to
    // see the attempts separately.
    for (int attempt = 0; attempt < 2; ++attempt) {
      h->scratch->disagreement = false;
      h->scratch->divergent.clear();
      const ThreadId thread = h->client_process->NewRootThread();
      const int index = h->monitor.NoteCallIssued(thread.ToString());
      StatusOr<Bytes> r = co_await h->client_cache->CallByName(
          h->client_process.get(), thread, kTroupeName, kCounterProc, Bytes{},
          h->call_opts, /*max_rebinds=*/0);
      if (r.ok()) {
        h->monitor.NoteCallAccepted(index, *r);
        accepted = true;
      } else {
        h->monitor.NoteCallFailed(index);
        h->client_cache->Invalidate(kTroupeName);
      }
      RepairFromScratch(h, accepted, &split_strikes);
      if (accepted || r.status().code() != ErrorCode::kStaleBinding) {
        break;
      }
    }
    if (accepted) {
      ++h->calls_accepted;
    } else {
      ++h->calls_failed;
    }
  }
}

Task<Status> AddTxnBody(RpcProcess* process, ThreadId thread, Troupe troupe,
                        ModuleNumber module, int64_t delta, txn::TxnId txn) {
  marshal::Writer w;
  txn.Write(w);
  w.WriteString("reg");
  w.WriteI64(delta);
  const Bytes args = w.Take();
  StatusOr<Bytes> r =
      co_await process->Call(thread, troupe, module, kTxnAddProc, args);
  co_return r.status();
}

Task<void> ClientTxnLoop(Harness* h) {
  for (;;) {
    co_await h->client_host->SleepFor(h->opts.txn_period);
    if (h->stop_workload) {
      co_return;
    }
    StatusOr<Troupe> troupe = co_await h->client_cache->Import(kTroupeName);
    if (!troupe.ok() || troupe->members.empty()) {
      h->client_cache->Invalidate(kTroupeName);
      ++h->txns_failed;
      continue;
    }
    const ThreadId thread = h->client_process->NewRootThread();
    RpcProcess* process = h->client_process.get();
    const Troupe server = *troupe;
    const ModuleNumber module = h->module_number;
    txn::TransactionBody body = [process, thread, server,
                                 module](const txn::TxnId& txn) {
      return AddTxnBody(process, thread, server, module, 1, txn);
    };
    txn::RunTransactionOptions topts;
    topts.max_attempts = 2;
    Status s = co_await txn::RunTransaction(process, h->coordinator.get(),
                                            thread, server, module, body,
                                            topts);
    if (s.ok()) {
      ++h->txns_ok;
    } else {
      ++h->txns_failed;
      h->client_cache->Invalidate(kTroupeName);
    }
  }
}

// ---------------------------------------------------------------------
// Maintenance: reconfiguration sweeps plus the state-agreement check.

Task<void> RefreshMembership(Harness* h) {
  StatusOr<Troupe> t = co_await h->agent_binding->LookupByName(kTroupeName);
  if (!t.ok()) {
    co_return;
  }
  h->current_members.clear();
  for (const core::ModuleAddress& member : t->members) {
    h->current_members.push_back(member.process);
    h->monitor.AddMemberAddress(member.process);
  }
}

// Direct get_state from each member; a member whose externalized state
// is in the minority on two consecutive checks has persistently forked
// (a snapshot racing an in-flight call never repeats) and is retired.
Task<void> CheckStateAgreement(Harness* h) {
  if (!h->opts.repair_divergence) {
    co_return;
  }
  StatusOr<Troupe> t = co_await h->agent_binding->LookupByName(kTroupeName);
  if (!t.ok() || t->members.size() < 2) {
    h->state_suspects.clear();
    co_return;
  }
  std::map<Bytes, std::vector<net::NetAddress>> classes;
  for (const core::ModuleAddress& member : t->members) {
    marshal::Writer w;
    w.WriteU16(member.module);
    const Bytes args = w.Take();
    CallOptions opts;
    opts.as_unreplicated_client = true;
    const Troupe direct = Troupe::Direct(member);
    StatusOr<Bytes> state = co_await h->agent_process->Call(
        h->agent_process->NewRootThread(), direct, core::kRuntimeModule,
        core::kGetState, args, opts);
    if (state.ok()) {
      classes[*state].push_back(member.process);
    }
  }
  if (classes.size() <= 1) {
    h->state_suspects.clear();
    co_return;
  }
  const std::vector<net::NetAddress>* keep = nullptr;
  net::NetAddress keep_low;
  for (const auto& [value, who] : classes) {
    net::NetAddress low = *std::min_element(who.begin(), who.end());
    if (keep == nullptr || who.size() > keep->size() ||
        (who.size() == keep->size() && low < keep_low)) {
      keep = &who;
      keep_low = low;
    }
  }
  std::set<net::NetAddress> minority;
  for (const auto& [value, who] : classes) {
    if (&who == keep) {
      continue;
    }
    for (const net::NetAddress& a : who) {
      minority.insert(a);
    }
  }
  for (const net::NetAddress& a : minority) {
    if (h->state_suspects.contains(a)) {
      KillMember(h, a, "state minority twice");
    }
  }
  h->state_suspects = std::move(minority);
}

Task<void> SweepLoop(Harness* h) {
  for (;;) {
    StatusOr<ReconfigReport> report = co_await h->reconfigurer->SweepOnce();
    (void)report;  // failures retried next period; convergence is
                   // judged by the final checks
    co_await RefreshMembership(h);
    co_await CheckStateAgreement(h);
    if (h->stop_workload) {
      co_return;
    }
    co_await h->agent_host->SleepFor(h->opts.sweep_period);
    if (h->stop_workload) {
      co_return;  // re-check: FinalChecks sweeps on its own after stop
    }
  }
}

// ---------------------------------------------------------------------
// Final convergence checks (run after heal + settle).

Task<void> FinalChecks(Harness* h) {
  // 1. The troupe is back at specified strength; one retry in case the
  //    first pass itself had repairs to make (trimming a phantom,
  //    replacing a freshly retired fork).
  StatusOr<ReconfigReport> report = co_await h->reconfigurer->SweepOnce();
  for (int retry = 0; retry < 2; ++retry) {
    if (report.ok() &&
        static_cast<int>(report->final_size) == h->opts.troupe_size) {
      break;
    }
    co_await h->agent_host->SleepFor(sim::Duration::Seconds(10));
    report = co_await h->reconfigurer->SweepOnce();
  }
  if (!report.ok()) {
    h->monitor.AddViolation("no reconfiguration convergence after heal: " +
                            report.status().ToString());
  } else if (static_cast<int>(report->final_size) != h->opts.troupe_size) {
    h->monitor.AddViolation(
        "troupe not at specified strength after heal: " +
        std::to_string(report->final_size) + " of " +
        std::to_string(h->opts.troupe_size));
  }
  co_await RefreshMembership(h);

  // 2. A fresh binding cache re-imports the name and every registered
  //    member answers the null call (binding convergence).
  BindingCache fresh(h->client_binding.get());
  StatusOr<Troupe> troupe = co_await fresh.Import(kTroupeName);
  if (!troupe.ok()) {
    h->monitor.AddViolation("binding cache cannot re-import after heal: " +
                            troupe.status().ToString());
  } else {
    for (const core::ModuleAddress& member : troupe->members) {
      CallOptions opts;
      opts.as_unreplicated_client = true;
      const Troupe direct = Troupe::Direct(member);
      StatusOr<Bytes> pong = co_await h->client_process->Call(
          h->client_process->NewRootThread(), direct, core::kRuntimeModule,
          core::kPing, Bytes{}, opts);
      if (!pong.ok()) {
        h->monitor.AddViolation("registered member unreachable after heal: " +
                                member.process.ToString());
      }
    }
  }

  // 3. One more replicated call through the fresh cache must be
  //    accepted by a quorum.
  const ThreadId thread = h->client_process->NewRootThread();
  const int index = h->monitor.NoteCallIssued(thread.ToString());
  StatusOr<Bytes> r = co_await fresh.CallByName(
      h->client_process.get(), thread, kTroupeName, kCounterProc, Bytes{},
      h->call_opts, /*max_rebinds=*/2);
  if (r.ok()) {
    h->monitor.NoteCallAccepted(index, *r);
    ++h->calls_accepted;
  } else {
    h->monitor.NoteCallFailed(index);
    ++h->calls_failed;
    h->monitor.AddViolation("no call convergence after heal: " +
                            r.status().ToString());
  }
  h->final_checks_done = true;
}

std::vector<sim::Host*> LiveMemberHosts(Harness* h) {
  std::vector<sim::Host*> hosts;
  for (const net::NetAddress& a : h->current_members) {
    auto it = h->member_of_address.find(a);
    if (it != h->member_of_address.end() && it->second->host->up()) {
      hosts.push_back(it->second->host);
    }
  }
  return hosts;
}

}  // namespace

std::string ChaosReport::Summary() const {
  std::string s = "calls " + std::to_string(calls_accepted) + "/" +
                  std::to_string(calls_issued) + " accepted, " +
                  std::to_string(calls_failed) + " failed; txns " +
                  std::to_string(txns_ok) + " ok " +
                  std::to_string(txns_failed) + " failed; faults " +
                  std::to_string(faults_applied) + " (crashes " +
                  std::to_string(crashes_injected) + "); members launched " +
                  std::to_string(members_launched) + ", repaired " +
                  std::to_string(suspects_killed) + "; violations " +
                  std::to_string(violations.size());
  for (const std::string& v : violations) {
    s += "\n  ! " + v;
  }
  return s;
}

ChaosReport RunChaos(const Schedule& schedule, const HarnessOptions& options) {
  HarnessOptions opts = options;
  if (opts.spare_machines == 0) {
    // Enough machines for every scheduled crash plus repair kills.
    opts.spare_machines = static_cast<int>(schedule.actions.size()) + 8;
  }

  Harness h(opts);
  const bool want_events = opts.collect_events ||
                           !opts.trace_json_path.empty() ||
                           !opts.trace_jsonl_path.empty();
  std::optional<obs::EventLog> event_log;
  if (want_events) {
    event_log.emplace(&h.world.bus());
  }
  h.world.executor().Spawn(SweepLoop(&h));
  h.world.executor().Spawn(ClientCallLoop(&h));
  if (opts.with_transactions) {
    h.world.executor().Spawn(ClientTxnLoop(&h));
  }
  h.world.RunFor(opts.warmup);

  NemesisTargets targets;
  targets.world = &h.world;
  Harness* self = &h;
  targets.member_hosts = [self] { return LiveMemberHosts(self); };
  targets.baseline = h.baseline;
  h.nemesis = std::make_unique<Nemesis>(targets, h.nemesis_host);
  h.world.executor().Spawn(h.nemesis->Run(schedule));
  h.world.RunFor(opts.run_length + Duration::Seconds(5));

  // Settle: revert anything still outstanding, then let the maintenance
  // loops converge the system.
  h.world.network().HealPartitions();
  h.world.network().set_default_fault_plan(h.baseline);
  for (size_t i = 0; i < h.world.host_count(); ++i) {
    h.world.host(i)->set_clock_skew(Duration::Zero());
  }
  h.world.RunFor(opts.settle_length);
  h.stop_workload = true;
  h.world.RunFor(Duration::Seconds(10));

  h.world.executor().Spawn(FinalChecks(&h));
  h.world.RunFor(Duration::Seconds(120));
  if (!h.final_checks_done) {
    h.monitor.AddViolation("final convergence checks did not complete");
  }

  // Wire-level oracle: replay the run's packet capture through the
  // Section 4.2 auditor before the monitor closes out.
  if (h.world.packet_capture() != nullptr) {
    const net::WireTapWriter* capture = h.world.packet_capture();
    const obs::wire::AuditReport wire = obs::wire::AuditRecords(
        capture->Recent(), obs::wire::AuditOptionsFor(msg::EndpointOptions{}),
        /*complete=*/capture->dropped() == 0);
    constexpr size_t kMaxWireViolations = 10;
    for (size_t i = 0;
         i < wire.violations.size() && i < kMaxWireViolations; ++i) {
      h.monitor.AddViolation("wire: " + wire.violations[i]);
    }
    if (wire.violations.size() > kMaxWireViolations) {
      h.monitor.AddViolation(
          "wire: +" +
          std::to_string(wire.violations.size() - kMaxWireViolations) +
          " more wire violation(s)");
    }
  }

  ChaosReport report;
  report.schedule_digest = schedule.Digest();
  report.calls_issued = h.monitor.issued_count();
  report.calls_accepted = h.calls_accepted;
  report.calls_failed = h.calls_failed;
  report.txns_ok = h.txns_ok;
  report.txns_failed = h.txns_failed;
  report.faults_applied = h.nemesis != nullptr ? h.nemesis->faults_applied() : 0;
  report.crashes_injected =
      h.nemesis != nullptr ? h.nemesis->crashes_injected() : 0;
  report.members_launched = h.members_launched;
  report.suspects_killed = h.suspects_killed;
  report.violations = h.monitor.Finish();
  report.trace_digest = h.monitor.TraceDigest();
  report.metrics = h.world.metrics().Snap(h.world.now().nanos());
  if (event_log.has_value()) {
    if (!opts.trace_json_path.empty()) {
      Status written = obs::WriteStringToFile(
          opts.trace_json_path,
          obs::ToChromeTrace(event_log->events(), h.world.HostNames()));
      if (!written.ok()) {
        report.violations.push_back("trace export failed: " +
                                    written.ToString());
      }
    }
    if (!opts.trace_jsonl_path.empty()) {
      Status written = obs::WriteStringToFile(
          opts.trace_jsonl_path, obs::ToJsonLines(event_log->events()));
      if (!written.ok()) {
        report.violations.push_back("trace export failed: " +
                                    written.ToString());
      }
    }
    if (opts.collect_events) {
      report.events = event_log->Take();
    }
  }
  return report;
}

}  // namespace circus::chaos
