#include "src/chaos/schedule.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

#include "src/sim/random.h"

namespace circus::chaos {

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kCrashMember:
      return "crash";
    case FaultKind::kPartition:
      return "partition";
    case FaultKind::kLossBurst:
      return "loss";
    case FaultKind::kLatencySpike:
      return "latency";
    case FaultKind::kClockSkew:
      return "skew";
  }
  return "?";
}

uint64_t HashBytes(uint64_t h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

std::string FaultAction::ToString() const {
  // Integer nanoseconds keep the rendering byte-stable across platforms
  // (no floating-point formatting in the canonical form).
  char buf[256];
  switch (kind) {
    case FaultKind::kCrashMember:
      std::snprintf(buf, sizeof(buf), "t=%" PRId64 "ns crash rank=%u",
                    at.nanos(), victim_rank);
      break;
    case FaultKind::kPartition:
      std::snprintf(buf, sizeof(buf),
                    "t=%" PRId64 "ns partition rank=%u size=%u for=%" PRId64
                    "ns",
                    at.nanos(), victim_rank, island_size, duration.nanos());
      break;
    case FaultKind::kLossBurst:
      std::snprintf(buf, sizeof(buf),
                    "t=%" PRId64 "ns loss p=%.3f dup=%.3f for=%" PRId64 "ns",
                    at.nanos(), loss, duplicate, duration.nanos());
      break;
    case FaultKind::kLatencySpike:
      std::snprintf(buf, sizeof(buf),
                    "t=%" PRId64 "ns latency extra=%" PRId64 "ns for=%" PRId64
                    "ns",
                    at.nanos(), extra_delay.nanos(), duration.nanos());
      break;
    case FaultKind::kClockSkew:
      std::snprintf(buf, sizeof(buf),
                    "t=%" PRId64 "ns skew rank=%u by=%" PRId64
                    "ns for=%" PRId64 "ns",
                    at.nanos(), victim_rank, skew.nanos(), duration.nanos());
      break;
  }
  return buf;
}

std::string Schedule::ToString() const {
  std::string out = "schedule seed=" + std::to_string(seed) + " actions=" +
                    std::to_string(actions.size());
  for (const FaultAction& a : actions) {
    out += "\n  " + a.ToString();
  }
  return out;
}

uint64_t Schedule::Digest() const {
  // The seed is excluded so a shrunk (hand-edited) schedule and a
  // generated one with identical actions digest identically.
  uint64_t h = kFnvOffset;
  for (const FaultAction& a : actions) {
    const std::string s = a.ToString();
    h = HashBytes(h, s.data(), s.size());
    h = HashBytes(h, "\n", 1);
  }
  return h;
}

Schedule GenerateSchedule(uint64_t seed, const ScheduleOptions& options) {
  Schedule schedule;
  schedule.seed = seed;
  sim::Rng rng(seed ^ 0x9e3779b97f4a7c15ull);
  const int total_weight = options.crash_weight + options.partition_weight +
                           options.loss_weight + options.latency_weight +
                           options.skew_weight;
  if (total_weight <= 0 || options.actions <= 0) {
    return schedule;
  }
  const int64_t window =
      std::max<int64_t>(1, (options.horizon - options.min_start).nanos());
  for (int i = 0; i < options.actions; ++i) {
    FaultAction a;
    a.at = options.min_start +
           sim::Duration::Nanos(rng.UniformInt(0, window - 1));
    int pick = static_cast<int>(rng.UniformInt(0, total_weight - 1));
    if ((pick -= options.crash_weight) < 0) {
      a.kind = FaultKind::kCrashMember;
    } else if ((pick -= options.partition_weight) < 0) {
      a.kind = FaultKind::kPartition;
    } else if ((pick -= options.loss_weight) < 0) {
      a.kind = FaultKind::kLossBurst;
    } else if ((pick -= options.latency_weight) < 0) {
      a.kind = FaultKind::kLatencySpike;
    } else {
      a.kind = FaultKind::kClockSkew;
    }
    a.victim_rank = static_cast<uint32_t>(rng.UniformInt(0, 1023));
    switch (a.kind) {
      case FaultKind::kCrashMember:
        break;  // instantaneous
      case FaultKind::kPartition:
        a.duration = sim::Duration::Seconds(rng.UniformInt(3, 20));
        a.island_size = static_cast<uint32_t>(rng.UniformInt(1, 2));
        break;
      case FaultKind::kLossBurst:
        a.duration = sim::Duration::Seconds(rng.UniformInt(2, 12));
        a.loss = 0.1 + 0.8 * rng.UniformDouble();
        a.duplicate = 0.5 * rng.UniformDouble();
        break;
      case FaultKind::kLatencySpike:
        a.duration = sim::Duration::Seconds(rng.UniformInt(2, 12));
        a.extra_delay = sim::Duration::Millis(rng.UniformInt(5, 200));
        break;
      case FaultKind::kClockSkew:
        a.duration = sim::Duration::Seconds(rng.UniformInt(5, 30));
        a.skew = sim::Duration::Millis(rng.UniformInt(-500, 500));
        break;
    }
    schedule.actions.push_back(a);
  }
  std::stable_sort(schedule.actions.begin(), schedule.actions.end(),
                   [](const FaultAction& x, const FaultAction& y) {
                     return x.at < y.at;
                   });
  return schedule;
}

}  // namespace circus::chaos
