#include "src/avail/analysis.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/common/check.h"

namespace circus::avail {

double HarmonicNumber(int n) {
  double h = 0;
  for (int k = 1; k <= n; ++k) {
    h += 1.0 / k;
  }
  return h;
}

double ExpectedMaxOfExponentials(int n, double mean) {
  return HarmonicNumber(n) * mean;
}

double SimulateMaxOfExponentials(sim::Rng& rng, int n, double mean,
                                 int trials) {
  CIRCUS_CHECK(n >= 1 && trials >= 1);
  double sum = 0;
  for (int t = 0; t < trials; ++t) {
    double max_value = 0;
    for (int i = 0; i < n; ++i) {
      const double u = rng.UniformDouble();
      const double x = -mean * std::log(1.0 - u);
      max_value = std::max(max_value, x);
    }
    sum += max_value;
  }
  return sum / trials;
}

double CommitDeadlockProbability(int k, int n) {
  CIRCUS_CHECK(k >= 1 && n >= 1);
  // (1/k!)^(n-1), computed in log space to stay finite for large k.
  double log_k_factorial = 0;
  for (int i = 2; i <= k; ++i) {
    log_k_factorial += std::log(static_cast<double>(i));
  }
  const double p_same = std::exp(-log_k_factorial * (n - 1));
  return 1.0 - p_same;
}

double SimulateCommitDeadlockProbability(sim::Rng& rng, int k, int n,
                                         int trials) {
  CIRCUS_CHECK(k >= 1 && n >= 1 && trials >= 1);
  int deadlocks = 0;
  std::vector<int> reference(k);
  std::vector<int> order(k);
  for (int t = 0; t < trials; ++t) {
    std::iota(reference.begin(), reference.end(), 0);
    std::shuffle(reference.begin(), reference.end(), rng.engine());
    bool all_same = true;
    for (int member = 1; member < n; ++member) {
      std::iota(order.begin(), order.end(), 0);
      std::shuffle(order.begin(), order.end(), rng.engine());
      if (order != reference) {
        all_same = false;
        // Keep drawing the remaining members' orders so the number of
        // random draws per trial is constant (deterministic streams).
      }
    }
    if (!all_same) {
      ++deadlocks;
    }
  }
  return static_cast<double>(deadlocks) / trials;
}

double TroupeAvailability(int n, double lambda, double mu) {
  CIRCUS_CHECK(n >= 1 && lambda > 0 && mu > 0);
  return 1.0 - std::pow(lambda / (lambda + mu), n);
}

std::vector<double> BirthDeathDistribution(int n, double lambda,
                                           double mu) {
  CIRCUS_CHECK(n >= 1 && lambda > 0 && mu > 0);
  const double rho = lambda / mu;
  std::vector<double> p(n + 1);
  // p_k = C(n, k) rho^k / (1 + rho)^n (machine-repair M/M/n/n,
  // Kleinrock). Compute C(n, k) iteratively.
  const double denom = std::pow(1.0 + rho, n);
  double binom = 1;
  double rho_k = 1;
  for (int k = 0; k <= n; ++k) {
    p[k] = binom * rho_k / denom;
    binom = binom * (n - k) / (k + 1);
    rho_k *= rho;
  }
  return p;
}

double MaxReplacementTimeOverLifetime(int n, double target_availability) {
  CIRCUS_CHECK(n >= 1);
  CIRCUS_CHECK(target_availability > 0 && target_availability < 1);
  // From Equation 6.2: 1/mu = (1/lambda) * x / (1 - x) with
  // x = (1 - A)^(1/n).
  const double x = std::pow(1.0 - target_availability, 1.0 / n);
  return x / (1.0 - x);
}

BirthDeathSample SimulateBirthDeath(sim::Rng& rng, int n, double lambda,
                                    double mu, double duration_units) {
  CIRCUS_CHECK(n >= 1 && duration_units > 0);
  BirthDeathSample sample;
  sample.state_time.assign(n + 1, 0.0);
  int failed = 0;
  double t = 0;
  while (t < duration_units) {
    const double fail_rate = (n - failed) * lambda;
    const double repair_rate = failed * mu;
    const double total_rate = fail_rate + repair_rate;
    // Exponential holding time in the current state.
    const double u = rng.UniformDouble();
    double dwell = -std::log(1.0 - u) / total_rate;
    if (t + dwell > duration_units) {
      dwell = duration_units - t;
      sample.state_time[failed] += dwell;
      break;
    }
    sample.state_time[failed] += dwell;
    t += dwell;
    // Choose the transition.
    if (rng.UniformDouble() * total_rate < fail_rate) {
      ++failed;
      ++sample.total_failures;
    } else {
      --failed;
    }
  }
  for (double& s : sample.state_time) {
    s /= duration_units;
  }
  sample.availability = 1.0 - sample.state_time[n];
  return sample;
}

}  // namespace circus::avail
