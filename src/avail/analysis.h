// The dissertation's analytical models, as a small numerics library, each
// paired with a Monte Carlo validator so the benches can show closed form
// and simulation agreeing.
//
//  * Theorem 4.3: the expected maximum of n independent exponentials with
//    mean 1/mu is H_n/mu, where H_n is the n-th harmonic number — hence
//    the expected time of a multicast replicated call grows only
//    logarithmically with troupe size (Section 4.4.2).
//  * Equation 5.1: with k conflicting transactions and an n-member
//    troupe, the probability that the troupe commit protocol deadlocks
//    is 1 - (1/k!)^(n-1) under independent uniform serialization orders.
//  * Equations 6.1/6.2: the birth-death (M/M/n/n) model of troupe
//    availability — A = 1 - (lambda/(lambda+mu))^n — and the maximum
//    replacement time that still achieves a target availability
//    (Section 6.4.2, Figure 6.3).
#ifndef SRC_AVAIL_ANALYSIS_H_
#define SRC_AVAIL_ANALYSIS_H_

#include <cstdint>
#include <vector>

#include "src/sim/random.h"

namespace circus::avail {

// H_n = 1 + 1/2 + ... + 1/n; H_0 = 0.
double HarmonicNumber(int n);

// Theorem 4.3: E[max of n iid Exp(mean)] = H_n * mean.
double ExpectedMaxOfExponentials(int n, double mean);

// Monte Carlo estimate of the same quantity.
double SimulateMaxOfExponentials(sim::Rng& rng, int n, double mean,
                                 int trials);

// Equation 5.1: P[deadlock] = 1 - (1/k!)^(n-1) for k conflicting
// transactions at an n-member troupe.
double CommitDeadlockProbability(int k, int n);

// Monte Carlo: each of n members draws an independent uniform
// serialization order of k transactions; a trial deadlocks unless all
// orders are identical.
double SimulateCommitDeadlockProbability(sim::Rng& rng, int k, int n,
                                         int trials);

// Equation 6.1: troupe availability with n members, failure rate lambda
// (1/mean lifetime), repair rate mu (1/mean replacement time).
double TroupeAvailability(int n, double lambda, double mu);

// The full birth-death equilibrium distribution: p[k] = probability of k
// failed members, k = 0..n (the M/M/n/n machine-repair model of
// Figure 6.3): p_k = C(n,k) rho^k / (1+rho)^n with rho = lambda/mu.
std::vector<double> BirthDeathDistribution(int n, double lambda, double mu);

// Equation 6.2: the largest mean replacement time 1/mu that still
// achieves availability `target` given member lifetime 1/lambda;
// returned as a multiple of the lifetime.
double MaxReplacementTimeOverLifetime(int n, double target_availability);

struct BirthDeathSample {
  double availability = 0;           // fraction of time not all failed
  std::vector<double> state_time;    // fraction of time with k failed
  uint64_t total_failures = 0;
};

// Continuous-time Monte Carlo of the birth-death process: n members,
// exponential lifetimes (rate lambda each) and repairs (rate mu each),
// run for `duration_units` of model time.
BirthDeathSample SimulateBirthDeath(sim::Rng& rng, int n, double lambda,
                                    double mu, double duration_units);

}  // namespace circus::avail

#endif  // SRC_AVAIL_ANALYSIS_H_
