// Packet tap at the Fabric seam: mirrors every datagram a fabric
// carries — in both directions, with a clock-seam timestamp — into a
// bounded JSONL capture. The same tap serves the simulated Network and
// the real-time rt::UdpFabric, so a capture from either can be decoded
// and audited by the same tooling (src/obs/wire.h, circus_wire).
//
// A capture is a JSONL file: a header object first ({"tap":
// "circus-wire", ...} with the tapping process's identity and clock
// domain), then one record per datagram. Like the trace ShardWriter,
// the writer buffers lines in a bounded ring and appends to disk only
// on Flush(), so the hot send/receive path never blocks on I/O;
// overflow drops the oldest unflushed records and leaves a counted
// {"dropped":N} marker so the auditor knows the capture is incomplete.
#ifndef SRC_NET_TAP_H_
#define SRC_NET_TAP_H_

#include <cstdint>
#include <cstdio>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/net/fabric.h"

namespace circus::net {

// One mirrored datagram. Send records are taken before fault injection
// (so a network-duplicated packet appears once on the send side, twice
// on the delivery side); delivery records carry the receiving socket's
// bound address as `destination` even when the datagram was addressed
// to a multicast group, so every record names the local party on both
// fabrics identically (rt's emulated multicast already rewrites the
// destination on receive).
struct WirePacket {
  int64_t time_ns = 0;
  bool send = false;  // true: entered the wire; false: delivered
  uint32_t host = 0;  // sim host id of the local party
  NetAddress source;
  NetAddress destination;
  circus::Bytes payload;
};

// Identity of the tapping process, recorded in the capture header.
struct WireTapInfo {
  std::string node;         // display name ("member-38302", "" in sim)
  std::string clock = "sim";  // "sim" (World) or "realtime" (rt)
};

class WireTapWriter : public PacketTap {
 public:
  // Opens `path` (truncating) and writes the header line immediately.
  // An empty `path` makes a ring-only writer: records are retained for
  // Recent() — the in-memory audit path the chaos harness uses — but
  // never hit disk. `clock` is the owning runtime's clock seam (sim
  // time in a World, the wall-seeded executor clock in rt). `capacity`
  // bounds both the recent-records ring and the unflushed line buffer.
  WireTapWriter(std::string path, WireTapInfo info,
                std::function<int64_t()> clock, size_t capacity = 65536);
  WireTapWriter(const WireTapWriter&) = delete;
  WireTapWriter& operator=(const WireTapWriter&) = delete;
  ~WireTapWriter() override;

  void Record(bool send, sim::Host* local, const Datagram& datagram) override;

  // Appends buffered lines to the file and fflushes. No-op for a
  // ring-only writer. kUnavailable on I/O error (lines kept for retry).
  circus::Status Flush();

  const WireTapInfo& info() const { return info_; }
  const std::string& path() const { return path_; }
  // False when a file capture could not be opened or its header failed
  // to write (a ring-only writer is always ok).
  bool ok() const {
    return path_.empty() || (file_ != nullptr && !header_write_failed_);
  }
  // The most recent records, oldest first (bounded by `capacity`).
  std::vector<WirePacket> Recent() const;
  uint64_t recorded() const { return recorded_; }
  uint64_t dropped() const { return dropped_; }

 private:
  std::string path_;
  WireTapInfo info_;
  std::function<int64_t()> clock_;
  size_t capacity_;
  std::FILE* file_ = nullptr;
  bool header_write_failed_ = false;
  std::deque<WirePacket> recent_;
  std::deque<std::string> pending_lines_;
  uint64_t recorded_ = 0;
  uint64_t dropped_ = 0;
  uint64_t dropped_unreported_ = 0;  // drops since the last flushed marker
};

// The canonical JSONL rendering of one record (no trailing newline);
// what the writer emits and ReadWireCaptureFile parses.
std::string WirePacketToJsonLine(const WirePacket& packet);

// One parsed capture file.
struct WireCaptureFile {
  WireTapInfo info;
  std::vector<WirePacket> records;
  uint64_t dropped = 0;       // sum of the file's drop markers
  size_t skipped_lines = 0;   // lines that were not records
  bool truncated_tail = false;  // partial final line (crash mid-flush)
};

// Reads and parses a capture. Fails only when the file cannot be read
// or the header line is missing/foreign; record lines that fail to
// parse are skipped (counted), and a partial final line is tolerated.
circus::StatusOr<WireCaptureFile> ReadWireCaptureFile(
    const std::string& path);

}  // namespace circus::net

#endif  // SRC_NET_TAP_H_
