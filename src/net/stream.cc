#include "src/net/stream.h"

#include <algorithm>
#include <set>
#include <utility>

#include "src/common/check.h"

namespace circus::net {

namespace {

enum PacketType : uint8_t {
  kSyn = 1,
  kSynAck = 2,
  kAck = 3,
  kData = 4,
  kDataAck = 5,
};

circus::Bytes EncodePacket(PacketType type, uint32_t seq,
                           const circus::Bytes& payload) {
  circus::Bytes out;
  out.reserve(5 + payload.size());
  out.push_back(type);
  out.push_back(static_cast<uint8_t>(seq >> 24));
  out.push_back(static_cast<uint8_t>(seq >> 16));
  out.push_back(static_cast<uint8_t>(seq >> 8));
  out.push_back(static_cast<uint8_t>(seq));
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

struct DecodedPacket {
  PacketType type;
  uint32_t seq;
  circus::Bytes payload;
};

std::optional<DecodedPacket> DecodePacket(const circus::Bytes& raw) {
  if (raw.size() < 5) {
    return std::nullopt;
  }
  DecodedPacket p;
  p.type = static_cast<PacketType>(raw[0]);
  p.seq = (static_cast<uint32_t>(raw[1]) << 24) |
          (static_cast<uint32_t>(raw[2]) << 16) |
          (static_cast<uint32_t>(raw[3]) << 8) | raw[4];
  p.payload.assign(raw.begin() + 5, raw.end());
  return p;
}

constexpr sim::Duration kRetransmitTimeout = sim::Duration::Millis(200);

}  // namespace

// ---------------------------------------------------------------------
// StreamConnection

StreamConnection::StreamConnection(Fabric* fabric, sim::Host* host,
                                   NetAddress peer)
    : fabric_(fabric),
      host_(host),
      peer_(peer),
      socket_(std::make_unique<DatagramSocket>(fabric, host, 0)),
      in_stream_(host),
      ack_channel_(std::make_unique<sim::Channel<uint32_t>>(host)),
      established_channel_(std::make_unique<sim::Channel<bool>>(host)) {}

StreamConnection::~StreamConnection() = default;

void StreamConnection::StartReceiverLoop() {
  host_->Spawn(ReceiverLoop());
}

sim::Task<void> StreamConnection::ReceiverLoop() {
  // "Kernel" protocol processing: no user-visible system calls.
  while (true) {
    Datagram d = co_await socket_->ReceiveRaw();
    std::optional<DecodedPacket> p = DecodePacket(d.payload);
    if (!p.has_value()) {
      continue;
    }
    switch (p->type) {
      case kData: {
        if (p->seq == next_expected_seq_) {
          ++next_expected_seq_;
          in_stream_.Send(std::move(p->payload));
        }
        // Cumulative ack (covers duplicates of older segments too).
        socket_->SendRaw(peer_,
                         EncodePacket(kDataAck, next_expected_seq_, {}));
        break;
      }
      case kDataAck: {
        if (p->seq > highest_ack_) {
          highest_ack_ = p->seq;
        }
        ack_channel_->Send(p->seq);
        break;
      }
      case kAck: {
        established_channel_->Send(true);
        break;
      }
      case kSynAck:
      case kSyn:
        // Late handshake retransmissions; ignore.
        break;
    }
  }
}

sim::Task<void> StreamConnection::SendSegmentReliably(
    const circus::Bytes& segment) {
  const uint32_t seq = next_send_seq_++;
  const circus::Bytes packet = EncodePacket(kData, seq, segment);
  while (highest_ack_ <= seq) {
    socket_->SendRaw(peer_, packet);
    std::optional<uint32_t> ack =
        co_await ack_channel_->ReceiveWithTimeout(kRetransmitTimeout);
    (void)ack;  // highest_ack_ is updated by the receiver loop
  }
}

sim::Task<void> StreamConnection::Write(circus::Bytes data) {
  co_await host_->DoSyscall(sim::Syscall::kWrite);
  size_t offset = 0;
  do {
    const size_t len = std::min(kSegmentBytes, data.size() - offset);
    circus::Bytes segment(data.begin() + offset,
                          data.begin() + offset + len);
    co_await SendSegmentReliably(segment);
    offset += len;
  } while (offset < data.size());
}

sim::Task<circus::Bytes> StreamConnection::Read() {
  co_await host_->DoSyscall(sim::Syscall::kRead);
  if (!read_buffer_.empty()) {
    circus::Bytes out = std::move(read_buffer_);
    read_buffer_.clear();
    co_return out;
  }
  circus::Bytes chunk = co_await ReceiveValue(in_stream_);
  // Drain anything else already queued (read(2) returns what is there).
  while (std::optional<circus::Bytes> more = in_stream_.TryReceive()) {
    chunk.insert(chunk.end(), more->begin(), more->end());
  }
  co_return chunk;
}

sim::Task<circus::Bytes> StreamConnection::ReadExactly(size_t n) {
  circus::Bytes out;
  while (out.size() < n) {
    if (!read_buffer_.empty()) {
      const size_t take = std::min(n - out.size(), read_buffer_.size());
      out.insert(out.end(), read_buffer_.begin(),
                 read_buffer_.begin() + take);
      read_buffer_.erase(read_buffer_.begin(), read_buffer_.begin() + take);
      continue;
    }
    circus::Bytes chunk = co_await Read();
    read_buffer_ = std::move(chunk);
  }
  co_return out;
}

// ---------------------------------------------------------------------
// StreamListener

StreamListener::StreamListener(Fabric* fabric, sim::Host* host, Port port)
    : fabric_(fabric), host_(host), socket_(fabric, host, port) {}

sim::Task<std::unique_ptr<StreamConnection>> StreamListener::Accept() {
  while (true) {
    Datagram d = co_await socket_.ReceiveRaw();
    std::optional<DecodedPacket> p = DecodePacket(d.payload);
    if (!p.has_value() || p->type != kSyn) {
      continue;  // duplicate or stray packet
    }
    auto conn =
        std::make_unique<StreamConnection>(fabric_, host_, d.source);
    conn->StartReceiverLoop();
    // Retransmit SYN-ACK until the client's ACK (or first data) arrives.
    for (int attempt = 0; attempt < 16; ++attempt) {
      conn->socket_->SendRaw(conn->peer_, EncodePacket(kSynAck, 0, {}));
      std::optional<bool> est =
          co_await conn->established_channel_->ReceiveWithTimeout(
              kRetransmitTimeout);
      if (est.has_value()) {
        co_return conn;
      }
      if (!conn->in_stream_.empty() || conn->next_expected_seq_ > 0) {
        co_return conn;  // data arrived: connection implicitly established
      }
    }
    // Client gave up; go back to listening.
  }
}

// ---------------------------------------------------------------------
// StreamConnect

sim::Task<circus::StatusOr<std::unique_ptr<StreamConnection>>> StreamConnect(
    Fabric* fabric, sim::Host* host, NetAddress server, int attempts,
    sim::Duration syn_timeout) {
  auto conn = std::make_unique<StreamConnection>(fabric, host, server);
  for (int i = 0; i < attempts; ++i) {
    conn->socket_->SendRaw(server, EncodePacket(kSyn, 0, {}));
    // Wait for the SYN-ACK directly on the connection socket; the
    // receiver loop is not yet running.
    std::optional<Datagram> d =
        co_await conn->socket_->incoming_channel().ReceiveWithTimeout(
            syn_timeout);
    if (!d.has_value()) {
      continue;
    }
    std::optional<DecodedPacket> p = DecodePacket(d->payload);
    if (!p.has_value() || p->type != kSynAck) {
      continue;
    }
    conn->peer_ = d->source;  // the server's per-connection endpoint
    conn->socket_->SendRaw(conn->peer_, EncodePacket(kAck, 0, {}));
    conn->StartReceiverLoop();
    co_return std::move(conn);
  }
  co_return circus::Status(circus::ErrorCode::kTimeout,
                           "connect: no SYN-ACK from " + server.ToString());
}

}  // namespace circus::net
