#include "src/net/world.h"

namespace circus::net {

World::World(uint64_t seed, sim::SyscallCostModel cost_model)
    : rng_(seed),
      network_(&executor_, rng_.Fork()),
      cost_model_(cost_model) {
  bus_.SetClock([this] { return executor_.now().nanos(); });
  metrics_.SetClock([this] { return executor_.now().nanos(); });
  network_.set_event_bus(&bus_);
  network_.set_metrics(&metrics_);
}

World::~World() {
  // Tear down in fail-stop style: crash everything so that coroutines
  // suspended on host primitives unwind and free their frames.
  for (auto& host : hosts_) {
    host->Crash();
  }
  executor_.RunUntilIdle();
  // The tap is destroyed before the network; make sure nothing dangles.
  network_.set_packet_tap(nullptr);
}

WireTapWriter& World::CapturePackets(const std::string& path,
                                     size_t capacity) {
  WireTapInfo info;
  info.node = "world";
  info.clock = "sim";
  tap_ = std::make_unique<WireTapWriter>(
      path, std::move(info), [this] { return executor_.now().nanos(); },
      capacity);
  network_.set_packet_tap(tap_.get());
  return *tap_;
}

sim::Host* World::AddHost(const std::string& name) {
  const uint32_t index = next_host_index_++;
  auto host = std::make_unique<sim::Host>(&executor_, index + 1, name,
                                          cost_model_);
  network_.AttachHost(host.get(), MakeHostAddress(index));
  hosts_.push_back(std::move(host));
  return hosts_.back().get();
}

void World::WireUtilization(obs::UtilizationMonitor* monitor) {
  for (auto& host_ptr : hosts_) {
    sim::Host* host = host_ptr.get();
    monitor->AddResource(
        "cpu." + host->name(),
        [host, prev = host->cpu()](int64_t window_ns) mutable {
          obs::ResourceSample sample;
          const sim::CpuStats delta = host->cpu() - prev;
          prev = host->cpu();
          if (window_ns > 0) {
            sample.utilization =
                static_cast<double>(delta.total_time().nanos()) /
                static_cast<double>(window_ns);
          }
          for (uint64_t n : delta.syscall_count) {
            sample.ops += n;
          }
          return sample;
        });
  }
  monitor->AddResource(
      "sim.executor",
      [this, prev = executor_.events_run()](int64_t) mutable {
        obs::ResourceSample sample;
        sample.queue = static_cast<double>(executor_.pending_events());
        sample.ops = executor_.events_run() - prev;
        prev = executor_.events_run();
        return sample;
      },
      // No busy share in virtual time; grade the run queue instead — a
      // queue hundreds deep means callbacks outrun the clock.
      obs::ResourceGrading{.high_queue = 256, .saturated_queue = 1024});
  monitor->AddResource(
      "net.sim",
      [this, prev = network_.stats()](int64_t) mutable {
        obs::ResourceSample sample;
        const NetworkStats& now = network_.stats();
        sample.ops = (now.packets_sent - prev.packets_sent) +
                     (now.packets_delivered - prev.packets_delivered);
        sample.bytes = now.bytes_sent - prev.bytes_sent;
        sample.errors = (now.packets_lost - prev.packets_lost) +
                        (now.packets_blocked_by_partition -
                         prev.packets_blocked_by_partition);
        sample.queue =
            static_cast<double>(network_.TotalReceiveBacklog());
        prev = now;
        return sample;
      },
      obs::ResourceGrading{.high_queue = 64, .saturated_queue = 256});
}

std::map<uint32_t, std::string> World::HostNames() const {
  std::map<uint32_t, std::string> names;
  for (const auto& host : hosts_) {
    names[static_cast<uint32_t>(host->id())] = host->name();
  }
  return names;
}

std::vector<sim::Host*> World::AddHosts(const std::string& prefix, int n) {
  std::vector<sim::Host*> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(AddHost(prefix + std::to_string(i)));
  }
  return out;
}

}  // namespace circus::net
