#include "src/net/world.h"

namespace circus::net {

World::World(uint64_t seed, sim::SyscallCostModel cost_model)
    : rng_(seed),
      network_(&executor_, rng_.Fork()),
      cost_model_(cost_model) {
  bus_.SetClock([this] { return executor_.now().nanos(); });
  network_.set_event_bus(&bus_);
  network_.set_metrics(&metrics_);
}

World::~World() {
  // Tear down in fail-stop style: crash everything so that coroutines
  // suspended on host primitives unwind and free their frames.
  for (auto& host : hosts_) {
    host->Crash();
  }
  executor_.RunUntilIdle();
  // The tap is destroyed before the network; make sure nothing dangles.
  network_.set_packet_tap(nullptr);
}

WireTapWriter& World::CapturePackets(const std::string& path,
                                     size_t capacity) {
  WireTapInfo info;
  info.node = "world";
  info.clock = "sim";
  tap_ = std::make_unique<WireTapWriter>(
      path, std::move(info), [this] { return executor_.now().nanos(); },
      capacity);
  network_.set_packet_tap(tap_.get());
  return *tap_;
}

sim::Host* World::AddHost(const std::string& name) {
  const uint32_t index = next_host_index_++;
  auto host = std::make_unique<sim::Host>(&executor_, index + 1, name,
                                          cost_model_);
  network_.AttachHost(host.get(), MakeHostAddress(index));
  hosts_.push_back(std::move(host));
  return hosts_.back().get();
}

std::map<uint32_t, std::string> World::HostNames() const {
  std::map<uint32_t, std::string> names;
  for (const auto& host : hosts_) {
    names[static_cast<uint32_t>(host->id())] = host->name();
  }
  return names;
}

std::vector<sim::Host*> World::AddHosts(const std::string& prefix, int n) {
  std::vector<sim::Host*> out;
  out.reserve(n);
  for (int i = 0; i < n; ++i) {
    out.push_back(AddHost(prefix + std::to_string(i)));
  }
  return out;
}

}  // namespace circus::net
