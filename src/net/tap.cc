#include "src/net/tap.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/json.h"

namespace circus::net {

namespace {

constexpr int kTapVersion = 1;

constexpr char kHexDigits[] = "0123456789abcdef";

std::string HexEncode(const circus::Bytes& bytes) {
  std::string out;
  out.reserve(bytes.size() * 2);
  for (uint8_t b : bytes) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xF]);
  }
  return out;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

bool HexDecode(const std::string& text, circus::Bytes* out) {
  if (text.size() % 2 != 0) {
    return false;
  }
  out->clear();
  out->reserve(text.size() / 2);
  for (size_t i = 0; i < text.size(); i += 2) {
    const int hi = HexNibble(text[i]);
    const int lo = HexNibble(text[i + 1]);
    if (hi < 0 || lo < 0) {
      return false;
    }
    out->push_back(static_cast<uint8_t>((hi << 4) | lo));
  }
  return true;
}

// "10.0.0.3:9000" -> NetAddress; false when malformed.
bool ParseAddress(const std::string& text, NetAddress* out) {
  unsigned a = 0, b = 0, c = 0, d = 0, port = 0;
  char tail = 0;
  if (std::sscanf(text.c_str(), "%u.%u.%u.%u:%u%c", &a, &b, &c, &d, &port,
                  &tail) != 5 ||
      a > 255 || b > 255 || c > 255 || d > 255 || port > 65535) {
    return false;
  }
  out->host = (a << 24) | (b << 16) | (c << 8) | d;
  out->port = static_cast<Port>(port);
  return true;
}

obs::json::Value TapHeader(const WireTapInfo& info) {
  obs::json::Value obj = obs::json::Value::Object();
  obj.Set("tap", "circus-wire");
  obj.Set("version", kTapVersion);
  obj.Set("node", info.node);
  obj.Set("clock", info.clock);
  return obj;
}

obs::json::Value DropMarker(uint64_t count) {
  obs::json::Value obj = obs::json::Value::Object();
  obj.Set("tap_drop", count);
  return obj;
}

bool WirePacketFromJson(const obs::json::Value& value, WirePacket* out) {
  if (value.type() != obs::json::Value::Type::kObject) {
    return false;
  }
  const obs::json::Value* t = value.Find("t");
  const obs::json::Value* d = value.Find("d");
  const obs::json::Value* src = value.Find("src");
  const obs::json::Value* dst = value.Find("dst");
  const obs::json::Value* data = value.Find("data");
  if (t == nullptr || d == nullptr || src == nullptr || dst == nullptr ||
      data == nullptr ||
      d->type() != obs::json::Value::Type::kString ||
      src->type() != obs::json::Value::Type::kString ||
      dst->type() != obs::json::Value::Type::kString ||
      data->type() != obs::json::Value::Type::kString) {
    return false;
  }
  WirePacket p;
  p.time_ns = t->AsI64();
  if (d->as_string() == "send") {
    p.send = true;
  } else if (d->as_string() == "recv") {
    p.send = false;
  } else {
    return false;
  }
  if (const obs::json::Value* host = value.Find("host")) {
    p.host = static_cast<uint32_t>(host->AsU64());
  }
  if (!ParseAddress(src->as_string(), &p.source) ||
      !ParseAddress(dst->as_string(), &p.destination) ||
      !HexDecode(data->as_string(), &p.payload)) {
    return false;
  }
  *out = std::move(p);
  return true;
}

}  // namespace

std::string WirePacketToJsonLine(const WirePacket& packet) {
  obs::json::Value obj = obs::json::Value::Object();
  obj.Set("t", packet.time_ns);
  obj.Set("d", packet.send ? "send" : "recv");
  obj.Set("host", static_cast<uint64_t>(packet.host));
  obj.Set("src", packet.source.ToString());
  obj.Set("dst", packet.destination.ToString());
  obj.Set("data", HexEncode(packet.payload));
  return obj.Dump();
}

WireTapWriter::WireTapWriter(std::string path, WireTapInfo info,
                             std::function<int64_t()> clock, size_t capacity)
    : path_(std::move(path)),
      info_(std::move(info)),
      clock_(std::move(clock)),
      capacity_(capacity) {
  if (path_.empty()) {
    return;
  }
  file_ = std::fopen(path_.c_str(), "wb");
  if (file_ == nullptr) {
    header_write_failed_ = true;
    return;
  }
  const std::string header = TapHeader(info_).Dump() + "\n";
  if (std::fwrite(header.data(), 1, header.size(), file_) != header.size()) {
    header_write_failed_ = true;
  }
  std::fflush(file_);
}

WireTapWriter::~WireTapWriter() {
  Flush();
  if (file_ != nullptr) {
    std::fclose(file_);
  }
}

void WireTapWriter::Record(bool send, sim::Host* local,
                           const Datagram& datagram) {
  WirePacket p;
  p.time_ns = clock_ ? clock_() : 0;
  p.send = send;
  p.host = static_cast<uint32_t>(local->id());
  p.source = datagram.source;
  p.destination = datagram.destination;
  p.payload = datagram.payload;
  ++recorded_;
  if (file_ != nullptr) {
    pending_lines_.push_back(WirePacketToJsonLine(p));
    while (pending_lines_.size() > capacity_) {
      pending_lines_.pop_front();
      ++dropped_;
      ++dropped_unreported_;
    }
  }
  recent_.push_back(std::move(p));
  while (recent_.size() > capacity_) {
    recent_.pop_front();
    if (file_ == nullptr) {
      // Ring-only captures count overflow too, so the in-memory audit
      // path knows when its view of the run is incomplete.
      ++dropped_;
    }
  }
}

circus::Status WireTapWriter::Flush() {
  if (file_ == nullptr) {
    return path_.empty()
               ? circus::Status::Ok()
               : circus::Status(circus::ErrorCode::kUnavailable,
                                "tap file not open: " + path_);
  }
  if (dropped_unreported_ != 0) {
    pending_lines_.push_front(DropMarker(dropped_unreported_).Dump());
    dropped_unreported_ = 0;
  }
  while (!pending_lines_.empty()) {
    const std::string& line = pending_lines_.front();
    if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
        std::fputc('\n', file_) == EOF) {
      return circus::Status(circus::ErrorCode::kUnavailable,
                            "short write to tap " + path_);
    }
    pending_lines_.pop_front();
  }
  if (std::fflush(file_) != 0) {
    return circus::Status(circus::ErrorCode::kUnavailable,
                          "fflush failed for tap " + path_);
  }
  return circus::Status::Ok();
}

std::vector<WirePacket> WireTapWriter::Recent() const {
  return std::vector<WirePacket>(recent_.begin(), recent_.end());
}

circus::StatusOr<WireCaptureFile> ReadWireCaptureFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return circus::Status(circus::ErrorCode::kNotFound,
                          "cannot open capture: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const std::string content = buffer.str();

  WireCaptureFile capture;
  bool have_header = false;
  size_t pos = 0;
  while (pos < content.size()) {
    const size_t nl = content.find('\n', pos);
    const bool has_newline = nl != std::string::npos;
    const std::string line =
        content.substr(pos, has_newline ? nl - pos : std::string::npos);
    pos = has_newline ? nl + 1 : content.size();
    if (line.empty()) {
      continue;
    }
    circus::StatusOr<obs::json::Value> parsed = obs::json::Parse(line);
    if (!parsed.ok()) {
      if (!has_newline) {
        // Partial final line: the writer crashed mid-flush. Tolerated.
        capture.truncated_tail = true;
      } else {
        ++capture.skipped_lines;
      }
      continue;
    }
    if (!have_header) {
      const obs::json::Value* magic = parsed->Find("tap");
      if (magic == nullptr ||
          magic->type() != obs::json::Value::Type::kString ||
          magic->as_string() != "circus-wire") {
        return circus::Status(circus::ErrorCode::kInvalidArgument,
                              path + ": not a circus wire capture");
      }
      if (const obs::json::Value* v = parsed->Find("node");
          v != nullptr && v->type() == obs::json::Value::Type::kString) {
        capture.info.node = v->as_string();
      }
      if (const obs::json::Value* v = parsed->Find("clock");
          v != nullptr && v->type() == obs::json::Value::Type::kString) {
        capture.info.clock = v->as_string();
      }
      have_header = true;
      continue;
    }
    if (const obs::json::Value* drop = parsed->Find("tap_drop")) {
      capture.dropped += drop->AsU64();
      continue;
    }
    WirePacket p;
    if (WirePacketFromJson(*parsed, &p)) {
      capture.records.push_back(std::move(p));
    } else {
      ++capture.skipped_lines;
    }
  }
  if (!have_header) {
    return circus::Status(circus::ErrorCode::kInvalidArgument,
                          path + ": missing capture header line");
  }
  return capture;
}

}  // namespace circus::net
