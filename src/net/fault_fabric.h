// Fault injection at the Fabric seam. A FaultFabric wraps any inner
// Fabric — the simulated Network or the real-time rt::UdpFabric — and
// applies a seeded plan of drops, duplications, delays, reorderings, and
// bidirectional partitions to every datagram transmitted through it.
// Sockets are constructed on the decorator; Bind/Unbind/JoinGroup pass
// straight through, so the inner fabric owns all addressing and delivery
// (and all observability: taps, packet observers, and bus events stay
// attached to the inner fabric and see each send exactly once, pre-fault,
// per the PacketTap contract in fabric.h).
//
// Determinism: every injection decision is drawn from one sim::Rng in
// transmit order — drop, then duplicate, then reorder, then jitter — so
// two fabrics seeded identically and fed the same sequence of sends make
// byte-identical decisions whether the inner fabric is simulated or real.
// That is the property the sim/rt parity test pins down.
#ifndef SRC_NET_FAULT_FABRIC_H_
#define SRC_NET_FAULT_FABRIC_H_

#include <cstdint>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <unordered_set>
#include <vector>

#include "src/common/status.h"
#include "src/net/address.h"
#include "src/net/fabric.h"
#include "src/sim/executor.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace circus::net {

// The injection knobs, applied independently to every transmitted
// datagram (after the partition check, which is absolute).
struct FaultInjectionPlan {
  double drop = 0.0;       // P(datagram is lost)
  double duplicate = 0.0;  // P(a second copy is sent)
  double reorder = 0.0;    // P(datagram is held back past its successor)
  sim::Duration delay;     // fixed extra delay on every copy
  sim::Duration jitter;    // exponential extra delay (mean; zero off)

  bool active() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           delay > sim::Duration::Zero() || jitter > sim::Duration::Zero();
  }
};

struct FaultFabricStats {
  uint64_t transmitted = 0;  // sends entering the decorator
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t delayed = 0;    // copies forwarded with nonzero delay
  uint64_t reordered = 0;  // datagrams held back
  uint64_t blocked_by_partition = 0;
};

class FaultFabric : public Fabric {
 public:
  // `inner` carries the datagrams; `executor` schedules delayed copies
  // (in rt this is the runtime executor whose virtual clock is wall
  // time). Both must outlive the decorator.
  FaultFabric(Fabric* inner, sim::Executor* executor, uint64_t seed);
  ~FaultFabric() override;

  HostAddress AddressOfHost(sim::Host::HostId id) const override;

  Fabric* inner() const { return inner_; }

  // --- The plan ---
  void set_plan(const FaultInjectionPlan& plan) { plan_ = plan; }
  const FaultInjectionPlan& plan() const { return plan_; }

  // Restarts the decision stream. Same seed + same send sequence =>
  // same decisions.
  void Reseed(uint64_t seed);
  uint64_t seed() const { return seed_; }

  // --- Partitions ---
  // Installs a bidirectional partition: a datagram is blocked when
  // exactly one of {source, destination} is in `island`. Multicast
  // destinations cannot be membership-checked at this seam, so they
  // count as outside the island: an island member's multicast sends are
  // blocked, while multicasts originated outside still reach it — in the
  // live testbed the nemesis installs the same island on every node, so
  // unicast traffic (all of the RPC path) is cut symmetrically.
  void PartitionEndpoints(std::vector<NetAddress> island);
  void Heal();
  bool partitioned() const { return !island_.empty(); }
  // True when the installed partition blocks unicast traffic between
  // `a` and `b` (either direction). The introspect health reply uses
  // this to label peers `partitioned` rather than merely silent.
  bool PathBlocked(const NetAddress& a, const NetAddress& b) const {
    if (island_.empty()) {
      return false;
    }
    return (island_.count(a) > 0) != (island_.count(b) > 0);
  }

  // --- Control protocol ---
  // One-line text commands, the wire format of the faults_port control
  // endpoint (mirroring the introspect protocol):
  //   status                      -> one-line settings + counters
  //   seed N | loss P | dup P | reorder P | delay_ms F | jitter_ms F
  //   partition ADDR...           ADDR = "a.b.c.d:port" or bare "port"
  //                               (bare ports mean 127.0.0.1)
  //   heal                        -> lift all partitions
  //   clear                       -> reset the plan and heal
  // Returns the reply text ("ok" for setters) or kInvalidArgument.
  circus::StatusOr<std::string> ApplyCommand(std::string_view command);
  std::string StatusLine() const;

  const FaultFabricStats& stats() const { return stats_; }

  // Test hook: when set, every transmit appends one decision record
  // ("fwd delay=0us", "drop", "dup delay=137us", "hold", "pdrop").
  void set_decision_log(std::vector<std::string>* log) {
    decision_log_ = log;
  }

  // "a.b.c.d:port", or a bare port meaning 127.0.0.1. Exposed for the
  // fault-control endpoint and the nemesis, which share the format.
  static std::optional<NetAddress> ParseEndpoint(std::string_view text);

 protected:
  circus::StatusOr<NetAddress> Bind(DatagramSocket* socket,
                                    Port port) override;
  void Unbind(DatagramSocket* socket) override;
  void Transmit(sim::Host* sender, Datagram datagram) override;
  void JoinGroup(HostAddress group, DatagramSocket* socket) override;
  void LeaveGroup(HostAddress group, DatagramSocket* socket) override;

 private:
  struct HeldDatagram {
    sim::Host* sender;
    Datagram datagram;
    sim::Duration delay;
  };

  bool PartitionBlocks(const Datagram& d) const;
  // Forwards one copy into the inner fabric, now or after `delay`.
  void Forward(sim::Host* sender, const Datagram& d, sim::Duration delay);
  // The actual re-injection: suppresses the inner fabric's send-side
  // observation (the decorator observed the original send already).
  void SendThrough(sim::Host* sender, Datagram d);
  void FlushHeld();

  Fabric* inner_;
  sim::Executor* executor_;
  uint64_t seed_;
  sim::Rng rng_;
  FaultInjectionPlan plan_;
  std::set<NetAddress> island_;
  std::optional<HeldDatagram> held_;
  uint64_t held_flush_event_ = 0;
  // Delayed-copy events still pending, cancelled on destruction so no
  // callback outlives the decorator.
  std::unordered_set<uint64_t> pending_events_;
  FaultFabricStats stats_;
  std::vector<std::string>* decision_log_ = nullptr;
};

}  // namespace circus::net

#endif  // SRC_NET_FAULT_FABRIC_H_
