// The transport seam. A Fabric is anything that can carry datagrams
// between hosts: the simulated Network (fault injection, virtual time)
// or the real-time rt::UdpFabric (AF_INET sockets, wall-clock time).
// Every layer above the socket — msg/, core/, txn/, binding/ — holds a
// Fabric* and runs unmodified over either implementation; the seam is a
// type, never a branch.
#ifndef SRC_NET_FABRIC_H_
#define SRC_NET_FABRIC_H_

#include <cstdint>
#include <functional>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/net/address.h"
#include "src/obs/bus.h"
#include "src/obs/metrics.h"
#include "src/sim/host.h"

namespace circus::net {

struct Datagram {
  NetAddress source;
  NetAddress destination;  // as addressed (may be a multicast group)
  circus::Bytes payload;
};

class DatagramSocket;

// Mirrors every datagram a fabric carries, in both directions. Unlike
// the send-only PacketObserver below, a tap also sees deliveries, so a
// capture records what each party actually put on — and took off — the
// wire. net::WireTapWriter (src/net/tap.h) is the JSONL implementation.
class PacketTap {
 public:
  virtual ~PacketTap() = default;

  // `send` is true when the datagram enters the wire (before any fault
  // injection) and false when it is delivered to a socket on `local`.
  // Delivery records carry the receiving socket's bound address as
  // `datagram.destination`, even for multicast, so both fabrics name
  // the local party identically.
  virtual void Record(bool send, sim::Host* local,
                      const Datagram& datagram) = 0;
};

class Fabric {
 public:
  // The largest datagram the fabric will carry (the MTU constraint of
  // Section 4.2.4). Both the simulated Ethernet and the real UDP path
  // enforce the same limit so segmenting behaves identically.
  static constexpr size_t kMaxDatagramBytes = 1500;

  Fabric() = default;
  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;
  virtual ~Fabric() = default;

  // The (single) network address of an attached host.
  virtual HostAddress AddressOfHost(sim::Host::HostId id) const = 0;

  // Invoked for every send operation before the packet enters the wire
  // (and before any fault injection); useful for asserting properties
  // such as "troupe members never talk to each other" (Section 4.3.3)
  // and for the sim/real wire-parity golden test.
  using PacketObserver = std::function<void(const Datagram&)>;
  void SetPacketObserver(PacketObserver observer) {
    observer_ = std::move(observer);
  }

  // The runtime's observability hub, carried here so every layer that
  // can reach the fabric (sockets, endpoints, processes) can publish
  // events and bump metrics without new plumbing. Null outside a
  // World / rt::Runtime.
  void set_event_bus(obs::EventBus* bus) { event_bus_ = bus; }
  obs::EventBus* event_bus() const { return event_bus_; }
  void set_metrics(obs::MetricsRegistry* metrics) { metrics_ = metrics; }
  obs::MetricsRegistry* metrics() const { return metrics_; }

  // Installs a bidirectional packet tap (null detaches). The tap must
  // outlive the fabric or be detached first; it sees every Transmit and
  // every delivery into a socket's receive queue.
  void set_packet_tap(PacketTap* tap) { tap_ = tap; }
  PacketTap* packet_tap() const { return tap_; }

  // Restricts the range Bind draws port-0 allocations from (inclusive).
  // The default mirrors the IANA dynamic range.
  void set_ephemeral_port_range(Port lo, Port hi) {
    ephemeral_lo_ = lo;
    ephemeral_hi_ = hi;
  }

 protected:
  friend class DatagramSocket;
  // FaultFabric is a decorator that forwards a socket's operations into a
  // wrapped inner fabric; the friendship grants it access to the
  // protected Bind/Transmit entry points and to the send-observation
  // suppression flag below.
  friend class FaultFabric;

  // Binds `socket` on its host; port 0 picks an ephemeral port from the
  // configured range. Fails with kAlreadyExists if the port is taken and
  // kUnavailable if the ephemeral range is exhausted.
  virtual circus::StatusOr<NetAddress> Bind(DatagramSocket* socket,
                                            Port port) = 0;
  // Releases the socket's binding and any group memberships.
  virtual void Unbind(DatagramSocket* socket) = 0;
  // Entry point used by DatagramSocket::Send/SendRaw. `datagram.payload`
  // must fit kMaxDatagramBytes.
  virtual void Transmit(sim::Host* sender, Datagram datagram) = 0;
  virtual void JoinGroup(HostAddress group, DatagramSocket* socket) = 0;
  virtual void LeaveGroup(HostAddress group, DatagramSocket* socket) = 0;

  // Bridge into the socket's (private) receive queue, so concrete
  // fabrics do not need to be friends of DatagramSocket themselves.
  // Mirrors the datagram to the packet tap (with the receiving socket's
  // bound address as destination) before enqueueing it.
  void Deliver(DatagramSocket* socket, Datagram d);

  // Shared send-side observation: tap + packet observer + kPacketSend.
  void ObserveSend(sim::Host* sender, const Datagram& datagram);

  Port ephemeral_lo_ = 49152;
  Port ephemeral_hi_ = 65535;

 private:
  PacketObserver observer_;
  PacketTap* tap_ = nullptr;
  obs::EventBus* event_bus_ = nullptr;
  obs::MetricsRegistry* metrics_ = nullptr;
  // One-shot: set by FaultFabric immediately before re-injecting a
  // surviving/duplicated copy through Transmit, so the copy is not
  // observed a second time (the decorator already observed the original
  // send, pre-fault, per the PacketTap contract). Cleared by the next
  // ObserveSend. Safe because every fabric runs single-threaded on its
  // executor and Transmit observes synchronously.
  bool suppress_send_observation_ = false;
};

}  // namespace circus::net

#endif  // SRC_NET_FABRIC_H_
