#include "src/net/network.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/net/socket.h"

namespace circus::net {

void Network::AttachHost(sim::Host* host, HostAddress address) {
  CIRCUS_CHECK(!IsMulticastHost(address));
  CIRCUS_CHECK(address_host_.find(address) == address_host_.end());
  host_address_[host->id()] = address;
  address_host_[address] = host->id();
}

HostAddress Network::AddressOfHost(sim::Host::HostId id) const {
  auto it = host_address_.find(id);
  CIRCUS_CHECK_MSG(it != host_address_.end(), "host not attached");
  return it->second;
}

void Network::SetPairFaultPlan(sim::Host::HostId src_host,
                               sim::Host::HostId dst_host,
                               const FaultPlan& plan) {
  pair_plans_[{src_host, dst_host}] = plan;
}

void Network::Partition(const std::vector<sim::Host::HostId>& island) {
  const uint32_t island_id = next_island_++;
  for (sim::Host::HostId h : island) {
    partition_[h] = island_id;
  }
}

void Network::HealPartitions() { partition_.clear(); }

bool Network::Connected(sim::Host::HostId a, sim::Host::HostId b) const {
  auto island = [this](sim::Host::HostId h) -> uint32_t {
    auto it = partition_.find(h);
    return it == partition_.end() ? 0 : it->second;
  };
  return island(a) == island(b);
}

void Network::JoinGroup(HostAddress group, DatagramSocket* socket) {
  CIRCUS_CHECK(IsMulticastHost(group));
  groups_[group].insert(socket);
}

void Network::LeaveGroup(HostAddress group, DatagramSocket* socket) {
  auto it = groups_.find(group);
  if (it != groups_.end()) {
    it->second.erase(socket);
    if (it->second.empty()) {
      groups_.erase(it);
    }
  }
}

circus::StatusOr<NetAddress> Network::Bind(DatagramSocket* socket,
                                           Port port) {
  const HostAddress addr = AddressOfHost(socket->host()->id());
  if (port == 0) {
    circus::StatusOr<Port> ephemeral = AllocateEphemeralPort(addr);
    if (!ephemeral.ok()) {
      return ephemeral.status();
    }
    port = *ephemeral;
  }
  const NetAddress local{addr, port};
  if (sockets_.find(local) != sockets_.end()) {
    return circus::Status(circus::ErrorCode::kAlreadyExists,
                          "port already bound");
  }
  sockets_[local] = socket;
  return local;
}

void Network::Unbind(DatagramSocket* socket) {
  sockets_.erase(socket->local_address());
  for (auto& [group, members] : groups_) {
    members.erase(socket);
  }
}

circus::StatusOr<Port> Network::AllocateEphemeralPort(HostAddress host) {
  if (next_ephemeral_port_ < ephemeral_lo_ ||
      next_ephemeral_port_ > ephemeral_hi_) {
    next_ephemeral_port_ = ephemeral_lo_;
  }
  const int range = ephemeral_hi_ - ephemeral_lo_ + 1;
  for (int attempts = 0; attempts < range; ++attempts) {
    Port p = next_ephemeral_port_++;
    if (next_ephemeral_port_ > ephemeral_hi_) {
      next_ephemeral_port_ = ephemeral_lo_;
    }
    if (sockets_.find(NetAddress{host, p}) == sockets_.end()) {
      return p;
    }
  }
  return circus::Status(circus::ErrorCode::kUnavailable,
                        "ephemeral ports exhausted");
}

const FaultPlan& Network::PlanFor(sim::Host::HostId src,
                                  sim::Host::HostId dst) const {
  auto it = pair_plans_.find({src, dst});
  return it == pair_plans_.end() ? default_plan_ : it->second;
}

size_t Network::TotalReceiveBacklog() const {
  size_t total = 0;
  for (const auto& [address, socket] : sockets_) {
    total += socket->queued();
  }
  return total;
}

void Network::Transmit(sim::Host* sender, Datagram datagram) {
  CIRCUS_CHECK_MSG(datagram.payload.size() <= kMaxDatagramBytes,
                   "datagram exceeds network MTU");
  ++stats_.packets_sent;
  stats_.bytes_sent += datagram.payload.size();
  ObserveSend(sender, datagram);
  if (datagram.destination.is_multicast()) {
    auto it = groups_.find(datagram.destination.host);
    if (it == groups_.end()) {
      ++stats_.packets_lost;
      return;
    }
    // One physical multicast transmission; per-recipient fate is
    // independent (Section 2.2: broadcast reliability may vary from
    // recipient to recipient).
    for (DatagramSocket* member : it->second) {
      const FaultPlan& plan = PlanFor(sender->id(), member->host()->id());
      if (!Connected(sender->id(), member->host()->id())) {
        ++stats_.packets_blocked_by_partition;
        continue;
      }
      DeliverTo(member, datagram, plan);
    }
    return;
  }
  DeliverUnicast(sender->id(), std::move(datagram));
}

void Network::DeliverUnicast(sim::Host::HostId src_host, Datagram datagram) {
  auto it = sockets_.find(datagram.destination);
  if (it == sockets_.end()) {
    // No one listening; silently dropped, like a real datagram.
    ++stats_.packets_lost;
    return;
  }
  DatagramSocket* socket = it->second;
  if (!Connected(src_host, socket->host()->id())) {
    ++stats_.packets_blocked_by_partition;
    return;
  }
  DeliverTo(socket, datagram, PlanFor(src_host, socket->host()->id()));
}

void Network::DeliverTo(DatagramSocket* socket, const Datagram& datagram,
                        const FaultPlan& plan) {
  int copies = 1;
  if (rng_.Bernoulli(plan.loss_probability)) {
    ++stats_.packets_lost;
    return;
  }
  if (rng_.Bernoulli(plan.duplicate_probability)) {
    ++stats_.packets_duplicated;
    copies = 2;
  }
  for (int i = 0; i < copies; ++i) {
    sim::Duration delay = plan.base_delay;
    if (plan.mean_extra_delay > sim::Duration::Zero()) {
      delay += rng_.Exponential(plan.mean_extra_delay);
    }
    if (i > 0) {
      delay += plan.base_delay;  // the duplicate trails the original
    }
    const NetAddress dst = socket->local_address();
    const uint32_t incarnation = socket->host()->incarnation();
    Datagram copy = datagram;
    executor_->ScheduleAfter(
        delay, [this, dst, incarnation, d = std::move(copy)]() mutable {
          // Re-resolve at delivery time: the socket may be gone and the
          // host may have crashed or rebooted while the packet was in
          // flight.
          auto sit = sockets_.find(dst);
          if (sit == sockets_.end()) {
            ++stats_.packets_lost;
            return;
          }
          DatagramSocket* target = sit->second;
          if (!target->host()->up() ||
              target->host()->incarnation() != incarnation) {
            ++stats_.packets_lost;
            return;
          }
          ++stats_.packets_delivered;
          Deliver(target, std::move(d));
        });
  }
}

}  // namespace circus::net
