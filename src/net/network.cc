#include "src/net/network.h"

#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"
#include "src/net/socket.h"

namespace circus::net {

void Network::AttachHost(sim::Host* host, HostAddress address) {
  CIRCUS_CHECK(!IsMulticastHost(address));
  CIRCUS_CHECK(address_host_.find(address) == address_host_.end());
  host_address_[host->id()] = address;
  address_host_[address] = host->id();
}

HostAddress Network::AddressOfHost(sim::Host::HostId id) const {
  auto it = host_address_.find(id);
  CIRCUS_CHECK_MSG(it != host_address_.end(), "host not attached");
  return it->second;
}

void Network::SetPairFaultPlan(sim::Host::HostId src_host,
                               sim::Host::HostId dst_host,
                               const FaultPlan& plan) {
  pair_plans_[{src_host, dst_host}] = plan;
}

void Network::Partition(const std::vector<sim::Host::HostId>& island) {
  const uint32_t island_id = next_island_++;
  for (sim::Host::HostId h : island) {
    partition_[h] = island_id;
  }
}

void Network::HealPartitions() { partition_.clear(); }

bool Network::Connected(sim::Host::HostId a, sim::Host::HostId b) const {
  auto island = [this](sim::Host::HostId h) -> uint32_t {
    auto it = partition_.find(h);
    return it == partition_.end() ? 0 : it->second;
  };
  return island(a) == island(b);
}

void Network::JoinGroup(HostAddress group, DatagramSocket* socket) {
  CIRCUS_CHECK(IsMulticastHost(group));
  groups_[group].insert(socket);
}

void Network::LeaveGroup(HostAddress group, DatagramSocket* socket) {
  auto it = groups_.find(group);
  if (it != groups_.end()) {
    it->second.erase(socket);
    if (it->second.empty()) {
      groups_.erase(it);
    }
  }
}

void Network::RegisterSocket(DatagramSocket* socket) {
  const NetAddress addr = socket->local_address();
  CIRCUS_CHECK_MSG(sockets_.find(addr) == sockets_.end(),
                   "port already bound");
  sockets_[addr] = socket;
}

void Network::UnregisterSocket(DatagramSocket* socket) {
  sockets_.erase(socket->local_address());
  for (auto& [group, members] : groups_) {
    members.erase(socket);
  }
}

Port Network::AllocateEphemeralPort(HostAddress host) {
  for (int attempts = 0; attempts < 16384; ++attempts) {
    Port p = next_ephemeral_port_++;
    if (next_ephemeral_port_ == 0) {
      next_ephemeral_port_ = 49152;
    }
    if (sockets_.find(NetAddress{host, p}) == sockets_.end()) {
      return p;
    }
  }
  CIRCUS_CHECK_MSG(false, "ephemeral ports exhausted");
  return 0;
}

const FaultPlan& Network::PlanFor(sim::Host::HostId src,
                                  sim::Host::HostId dst) const {
  auto it = pair_plans_.find({src, dst});
  return it == pair_plans_.end() ? default_plan_ : it->second;
}

void Network::Transmit(sim::Host* sender, Datagram datagram) {
  CIRCUS_CHECK_MSG(datagram.payload.size() <= kMaxDatagramBytes,
                   "datagram exceeds network MTU");
  ++stats_.packets_sent;
  if (observer_) {
    observer_(datagram);
  }
  if (event_bus_ != nullptr && event_bus_->active()) {
    obs::Event e;
    e.kind = obs::EventKind::kPacketSend;
    e.host = static_cast<uint32_t>(sender->id());
    e.a = obs::PackAddress(datagram.source.host, datagram.source.port);
    e.b = obs::PackAddress(datagram.destination.host,
                           datagram.destination.port);
    e.c = datagram.payload.size();
    event_bus_->Publish(std::move(e));
  }
  if (datagram.destination.is_multicast()) {
    auto it = groups_.find(datagram.destination.host);
    if (it == groups_.end()) {
      ++stats_.packets_lost;
      return;
    }
    // One physical multicast transmission; per-recipient fate is
    // independent (Section 2.2: broadcast reliability may vary from
    // recipient to recipient).
    for (DatagramSocket* member : it->second) {
      const FaultPlan& plan = PlanFor(sender->id(), member->host()->id());
      if (!Connected(sender->id(), member->host()->id())) {
        ++stats_.packets_blocked_by_partition;
        continue;
      }
      DeliverTo(member, datagram, plan);
    }
    return;
  }
  DeliverUnicast(sender->id(), std::move(datagram));
}

void Network::DeliverUnicast(sim::Host::HostId src_host, Datagram datagram) {
  auto it = sockets_.find(datagram.destination);
  if (it == sockets_.end()) {
    // No one listening; silently dropped, like a real datagram.
    ++stats_.packets_lost;
    return;
  }
  DatagramSocket* socket = it->second;
  if (!Connected(src_host, socket->host()->id())) {
    ++stats_.packets_blocked_by_partition;
    return;
  }
  DeliverTo(socket, datagram, PlanFor(src_host, socket->host()->id()));
}

void Network::DeliverTo(DatagramSocket* socket, const Datagram& datagram,
                        const FaultPlan& plan) {
  int copies = 1;
  if (rng_.Bernoulli(plan.loss_probability)) {
    ++stats_.packets_lost;
    return;
  }
  if (rng_.Bernoulli(plan.duplicate_probability)) {
    ++stats_.packets_duplicated;
    copies = 2;
  }
  for (int i = 0; i < copies; ++i) {
    sim::Duration delay = plan.base_delay;
    if (plan.mean_extra_delay > sim::Duration::Zero()) {
      delay += rng_.Exponential(plan.mean_extra_delay);
    }
    if (i > 0) {
      delay += plan.base_delay;  // the duplicate trails the original
    }
    const NetAddress dst = socket->local_address();
    const uint32_t incarnation = socket->host()->incarnation();
    Datagram copy = datagram;
    executor_->ScheduleAfter(
        delay, [this, dst, incarnation, d = std::move(copy)]() mutable {
          // Re-resolve at delivery time: the socket may be gone and the
          // host may have crashed or rebooted while the packet was in
          // flight.
          auto sit = sockets_.find(dst);
          if (sit == sockets_.end()) {
            ++stats_.packets_lost;
            return;
          }
          DatagramSocket* target = sit->second;
          if (!target->host()->up() ||
              target->host()->incarnation() != incarnation) {
            ++stats_.packets_lost;
            return;
          }
          ++stats_.packets_delivered;
          target->EnqueueIncoming(std::move(d));
        });
  }
}

}  // namespace circus::net
