// The simulated internet. Packets are unreliably delivered: they may be
// lost, delayed, or duplicated (Section 2.2); checksums turn garbled
// packets into lost ones, so garbling is folded into the loss probability.
// The network also models partitions (Section 4.3.5) and true multicast
// delivery (Section 4.3.7). It is one implementation of the net::Fabric
// seam; rt::UdpFabric is the other.
#ifndef SRC_NET_NETWORK_H_
#define SRC_NET_NETWORK_H_

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/net/address.h"
#include "src/net/fabric.h"
#include "src/sim/host.h"
#include "src/sim/random.h"
#include "src/sim/time.h"

namespace circus::net {

// Loss/duplication/latency characteristics of a path. The defaults model
// the paper's lightly loaded 10 Mb/s Ethernet: sub-millisecond delivery,
// no loss.
struct FaultPlan {
  double loss_probability = 0.0;
  double duplicate_probability = 0.0;
  sim::Duration base_delay = sim::Duration::Micros(500);
  // Exponential jitter added on top of base_delay (mean; zero disables).
  sim::Duration mean_extra_delay = sim::Duration::Zero();

  static FaultPlan PerfectLan() { return FaultPlan{}; }
  static FaultPlan Lossy(double loss) {
    FaultPlan p;
    p.loss_probability = loss;
    return p;
  }
};

struct NetworkStats {
  uint64_t packets_sent = 0;       // send operations (multicast counts 1)
  uint64_t packets_delivered = 0;  // per-recipient deliveries
  uint64_t bytes_sent = 0;         // payload bytes entering the wire
  uint64_t packets_lost = 0;
  uint64_t packets_duplicated = 0;
  uint64_t packets_blocked_by_partition = 0;
};

class Network : public Fabric {
 public:
  Network(sim::Executor* executor, sim::Rng rng)
      : executor_(executor), rng_(std::move(rng)) {}

  // --- Topology ---
  // Gives `host` its (single) network address. Must be called before any
  // socket is opened on the host.
  void AttachHost(sim::Host* host, HostAddress address);
  HostAddress AddressOfHost(sim::Host::HostId id) const override;

  // --- Fault injection ---
  void set_default_fault_plan(const FaultPlan& plan) {
    default_plan_ = plan;
  }
  const FaultPlan& default_fault_plan() const { return default_plan_; }
  // Overrides the plan for packets from `src_host` to `dst_host`.
  void SetPairFaultPlan(sim::Host::HostId src_host,
                        sim::Host::HostId dst_host, const FaultPlan& plan);
  void ClearPairFaultPlans() { pair_plans_.clear(); }

  // --- Partitions ---
  // Splits the network: hosts in `island` can only talk among themselves;
  // everyone else forms the other side. Layered calls refine further.
  void Partition(const std::vector<sim::Host::HostId>& island);
  void HealPartitions();
  bool Connected(sim::Host::HostId a, sim::Host::HostId b) const;

  // --- Observation ---
  const NetworkStats& stats() const { return stats_; }
  void ResetStats() { stats_ = NetworkStats{}; }
  // Datagrams sitting in bound sockets' receive queues, network-wide —
  // the recv-backlog side of the utilization telemetry.
  size_t TotalReceiveBacklog() const;

 protected:
  circus::StatusOr<NetAddress> Bind(DatagramSocket* socket,
                                    Port port) override;
  void Unbind(DatagramSocket* socket) override;
  // Entry point used by DatagramSocket::Send.
  void Transmit(sim::Host* sender, Datagram datagram) override;
  void JoinGroup(HostAddress group, DatagramSocket* socket) override;
  void LeaveGroup(HostAddress group, DatagramSocket* socket) override;

 private:
  circus::StatusOr<Port> AllocateEphemeralPort(HostAddress host);
  void DeliverUnicast(sim::Host::HostId src_host, Datagram datagram);
  void DeliverTo(DatagramSocket* socket, const Datagram& datagram,
                 const FaultPlan& plan);
  const FaultPlan& PlanFor(sim::Host::HostId src,
                           sim::Host::HostId dst) const;

  sim::Executor* executor_;
  sim::Rng rng_;
  FaultPlan default_plan_;
  std::map<std::pair<sim::Host::HostId, sim::Host::HostId>, FaultPlan>
      pair_plans_;
  // partition_[h] identifies the island h lives on (default island 0).
  std::unordered_map<sim::Host::HostId, uint32_t> partition_;
  uint32_t next_island_ = 1;
  std::unordered_map<sim::Host::HostId, HostAddress> host_address_;
  std::unordered_map<HostAddress, sim::Host::HostId> address_host_;
  Port next_ephemeral_port_ = 0;  // 0: start of configured range
  std::unordered_map<NetAddress, DatagramSocket*, NetAddressHash> sockets_;
  std::map<HostAddress, std::set<DatagramSocket*>> groups_;
  NetworkStats stats_;
};

}  // namespace circus::net

#endif  // SRC_NET_NETWORK_H_
