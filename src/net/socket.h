// Datagram sockets over the simulated network. A socket is bound to one
// (host, port) pair; sending charges the sendmsg system call and receiving
// charges recvmsg, reproducing the 4.2BSD cost structure the paper
// measured (Section 4.4.1). Hosts are single-homed in this reproduction;
// the paper's multi-homing workaround (an array of sockets multiplexed
// with select) is discussed in EXPERIMENTS.md but not modelled.
#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <optional>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/net/address.h"
#include "src/net/network.h"
#include "src/sim/channel.h"
#include "src/sim/host.h"
#include "src/sim/task.h"

namespace circus::net {

class DatagramSocket {
 public:
  // Binds to `port` on `host`; port 0 picks an ephemeral port. The socket
  // detaches automatically when the host crashes.
  DatagramSocket(Network* network, sim::Host* host, Port port);
  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;
  ~DatagramSocket();

  sim::Host* host() const { return host_; }
  Network* network() const { return network_; }
  NetAddress local_address() const { return local_; }
  bool closed() const { return closed_; }

  // Sends one datagram (unicast or multicast destination). Charges one
  // sendmsg system call; completes after the syscall's CPU cost. Delivery
  // is unreliable per the network's fault plan.
  sim::Task<void> Send(NetAddress to, circus::Bytes payload);

  // Blocks until a datagram arrives; charges one recvmsg on wakeup.
  sim::Task<Datagram> Receive();

  // Blocks up to `timeout`; returns nullopt on timeout. Charges recvmsg
  // only when a datagram is actually received. The caller is responsible
  // for charging any timer-management syscalls it models (e.g. the UDP
  // echo test's setitimer pair, Figure 4.5).
  sim::Task<std::optional<Datagram>> ReceiveWithTimeout(
      sim::Duration timeout);

  // Non-blocking poll: charges one select call.
  std::optional<Datagram> Poll();

  // Kernel-level variants: no system-call charge. Used by protocols the
  // paper locates inside the kernel (the TCP analogue), whose per-packet
  // work is not visible as user-process system calls.
  void SendRaw(NetAddress to, circus::Bytes payload);
  sim::Task<Datagram> ReceiveRaw();
  // Direct access to the receive queue for kernel-level protocols that
  // need timeouts without recvmsg charges.
  sim::Channel<Datagram>& incoming_channel() { return incoming_; }

  void JoinGroup(HostAddress group);
  void LeaveGroup(HostAddress group);

  void Close();

  size_t queued() const { return incoming_.size(); }

 private:
  friend class Network;

  void EnqueueIncoming(Datagram d) { incoming_.Send(std::move(d)); }

  Network* network_;
  sim::Host* host_;
  NetAddress local_;
  sim::Channel<Datagram> incoming_;
  std::vector<HostAddress> joined_groups_;
  sim::Host::ListenerId crash_listener_ = 0;
  bool closed_ = false;
};

}  // namespace circus::net

#endif  // SRC_NET_SOCKET_H_
