// Datagram sockets over a net::Fabric (the simulated network or the
// real-time UDP fabric). A socket is bound to one (host, port) pair;
// sending charges the sendmsg system call and receiving charges recvmsg,
// reproducing the 4.2BSD cost structure the paper measured
// (Section 4.4.1) — under rt's wall-clock cost model the charges are
// zero and real syscalls cost real time instead. Hosts are single-homed
// in this reproduction; the paper's multi-homing workaround (an array of
// sockets multiplexed with select) is discussed in EXPERIMENTS.md but
// not modelled.
#ifndef SRC_NET_SOCKET_H_
#define SRC_NET_SOCKET_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/net/address.h"
#include "src/net/fabric.h"
#include "src/sim/channel.h"
#include "src/sim/host.h"
#include "src/sim/task.h"

namespace circus::net {

class DatagramSocket {
 public:
  // Binds to `port` on `host`; port 0 picks an ephemeral port. The socket
  // detaches automatically when the host crashes. Bind failure is a
  // CIRCUS_CHECK here; use Open() where failure is recoverable.
  DatagramSocket(Fabric* fabric, sim::Host* host, Port port);
  DatagramSocket(const DatagramSocket&) = delete;
  DatagramSocket& operator=(const DatagramSocket&) = delete;
  ~DatagramSocket();

  // Status-returning variant of the constructor: fails with
  // kAlreadyExists on a taken port and kUnavailable when the ephemeral
  // range is exhausted, instead of aborting.
  static circus::StatusOr<std::unique_ptr<DatagramSocket>> Open(
      Fabric* fabric, sim::Host* host, Port port);

  sim::Host* host() const { return host_; }
  Fabric* fabric() const { return fabric_; }
  NetAddress local_address() const { return local_; }
  bool closed() const { return closed_; }

  // Sends one datagram (unicast or multicast destination). Charges one
  // sendmsg system call; completes after the syscall's CPU cost. Delivery
  // is unreliable per the fabric's fault plan. Fails with
  // kFailedPrecondition on a closed socket; a crashed host throws
  // sim::HostCrashedError as everywhere else.
  sim::Task<circus::Status> Send(NetAddress to, circus::Bytes payload);

  // Blocks until a datagram arrives; charges one recvmsg on wakeup.
  sim::Task<Datagram> Receive();

  // Blocks up to `timeout`; returns nullopt on timeout. Charges recvmsg
  // only when a datagram is actually received. The caller is responsible
  // for charging any timer-management syscalls it models (e.g. the UDP
  // echo test's setitimer pair, Figure 4.5).
  sim::Task<std::optional<Datagram>> ReceiveWithTimeout(
      sim::Duration timeout);

  // Non-blocking poll: charges one select call.
  std::optional<Datagram> Poll();

  // Kernel-level variants: no system-call charge. Used by protocols the
  // paper locates inside the kernel (the TCP analogue), whose per-packet
  // work is not visible as user-process system calls.
  circus::Status SendRaw(NetAddress to, circus::Bytes payload);
  sim::Task<Datagram> ReceiveRaw();
  // Direct access to the receive queue for kernel-level protocols that
  // need timeouts without recvmsg charges.
  sim::Channel<Datagram>& incoming_channel() { return incoming_; }

  void JoinGroup(HostAddress group);
  void LeaveGroup(HostAddress group);

  void Close();

  size_t queued() const { return incoming_.size(); }

 private:
  friend class Fabric;

  // Unbound socket; Bind() must succeed before it is usable.
  DatagramSocket(Fabric* fabric, sim::Host* host);

  // Completes construction after a successful Fabric::Bind.
  void FinishBind(NetAddress local);

  void EnqueueIncoming(Datagram d) { incoming_.Send(std::move(d)); }

  Fabric* fabric_;
  sim::Host* host_;
  NetAddress local_;
  sim::Channel<Datagram> incoming_;
  std::vector<HostAddress> joined_groups_;
  sim::Host::ListenerId crash_listener_ = 0;
  bool bound_ = false;
  bool closed_ = false;
};

}  // namespace circus::net

#endif  // SRC_NET_SOCKET_H_
