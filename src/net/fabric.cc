#include "src/net/fabric.h"

#include <utility>

#include "src/net/socket.h"

namespace circus::net {

void Fabric::Deliver(DatagramSocket* socket, Datagram d) {
  if (tap_ != nullptr) {
    Datagram seen = d;
    seen.destination = socket->local_address();
    tap_->Record(/*send=*/false, socket->host(), seen);
  }
  socket->EnqueueIncoming(std::move(d));
}

void Fabric::ObserveSend(sim::Host* sender, const Datagram& datagram) {
  if (suppress_send_observation_) {
    suppress_send_observation_ = false;
    return;
  }
  if (tap_ != nullptr) {
    tap_->Record(/*send=*/true, sender, datagram);
  }
  if (observer_) {
    observer_(datagram);
  }
  if (event_bus_ != nullptr && event_bus_->active()) {
    obs::Event e;
    e.kind = obs::EventKind::kPacketSend;
    e.host = static_cast<uint32_t>(sender->id());
    e.a = obs::PackAddress(datagram.source.host, datagram.source.port);
    e.b = obs::PackAddress(datagram.destination.host,
                           datagram.destination.port);
    e.c = datagram.payload.size();
    event_bus_->Publish(std::move(e));
  }
}

}  // namespace circus::net
