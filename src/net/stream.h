// A minimal reliable byte-stream over the simulated datagram network — the
// TCP analogue used by the Table 4.1 comparison. Faithful to the aspects
// the paper measures: connection establishment by three-way handshake
// (which 4.2BSD TCP required before any data transfer), reliable in-order
// delivery with kernel-managed retransmission timers (no setitimer charges
// to the user process), and a streamlined read/write interface whose
// system calls are cheaper than sendmsg/recvmsg because they avoid
// scatter/gather copying (Section 4.4.1).
#ifndef SRC_NET_STREAM_H_
#define SRC_NET_STREAM_H_

#include <deque>
#include <memory>
#include <optional>

#include "src/common/bytes.h"
#include "src/common/status.h"
#include "src/net/socket.h"
#include "src/sim/channel.h"
#include "src/sim/notification.h"

namespace circus::net {

class StreamConnection;

// Server-side listening endpoint.
class StreamListener {
 public:
  StreamListener(Fabric* fabric, sim::Host* host, Port port);

  NetAddress local_address() const { return socket_.local_address(); }

  // Waits for a client handshake and returns the established connection.
  sim::Task<std::unique_ptr<StreamConnection>> Accept();

 private:
  Fabric* fabric_;
  sim::Host* host_;
  DatagramSocket socket_;
};

// Client-side connect: performs the three-way handshake. Returns an error
// after `attempts` unanswered SYNs.
sim::Task<circus::StatusOr<std::unique_ptr<StreamConnection>>> StreamConnect(
    Fabric* fabric, sim::Host* host, NetAddress server, int attempts = 5,
    sim::Duration syn_timeout = sim::Duration::Millis(500));

// One direction-pair of an established stream.
class StreamConnection {
 public:
  StreamConnection(Fabric* fabric, sim::Host* host, NetAddress peer);
  ~StreamConnection();

  NetAddress local_address() const { return socket_->local_address(); }
  NetAddress peer() const { return peer_; }

  // Writes the whole buffer to the stream; charges one write system call.
  // Segmentation, retransmission, and acknowledgment are "in-kernel" and
  // charge nothing to the user process.
  sim::Task<void> Write(circus::Bytes data);

  // Blocks until at least one byte is available, then drains the buffer
  // (read(2) semantics); charges one read system call.
  sim::Task<circus::Bytes> Read();

  // Reads until exactly `n` bytes have been consumed.
  sim::Task<circus::Bytes> ReadExactly(size_t n);

 private:
  friend class StreamListener;
  friend sim::Task<circus::StatusOr<std::unique_ptr<StreamConnection>>>
  StreamConnect(Fabric*, sim::Host*, NetAddress, int, sim::Duration);

  static constexpr size_t kSegmentBytes = 1024;

  void StartReceiverLoop();
  sim::Task<void> ReceiverLoop();
  sim::Task<void> SendSegmentReliably(const circus::Bytes& segment);

  Fabric* fabric_;
  sim::Host* host_;
  NetAddress peer_;
  std::unique_ptr<DatagramSocket> socket_;
  // Receive side.
  uint32_t next_expected_seq_ = 0;
  sim::Channel<circus::Bytes> in_stream_;
  circus::Bytes read_buffer_;
  // Send side.
  uint32_t next_send_seq_ = 0;
  uint32_t highest_ack_ = 0;  // cumulative: acks carry seq+1
  std::unique_ptr<sim::Channel<uint32_t>> ack_channel_;
  // Handshake: signalled when the peer's ACK (or first data) arrives.
  std::unique_ptr<sim::Channel<bool>> established_channel_;
};

}  // namespace circus::net

#endif  // SRC_NET_STREAM_H_
