#include "src/net/socket.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace circus::net {

DatagramSocket::DatagramSocket(Network* network, sim::Host* host, Port port)
    : network_(network), host_(host), incoming_(host) {
  CIRCUS_CHECK_MSG(host->up(), "cannot open socket on a crashed host");
  const HostAddress addr = network->AddressOfHost(host->id());
  if (port == 0) {
    port = network->AllocateEphemeralPort(addr);
  }
  local_ = NetAddress{addr, port};
  network_->RegisterSocket(this);
  crash_listener_ = host_->AddCrashListener([this] {
    // Fail-stop: the socket vanishes with the machine.
    network_->UnregisterSocket(this);
    closed_ = true;
  });
}

DatagramSocket::~DatagramSocket() { Close(); }

void DatagramSocket::Close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  network_->UnregisterSocket(this);
  host_->RemoveCrashListener(crash_listener_);
}

sim::Task<void> DatagramSocket::Send(NetAddress to, circus::Bytes payload) {
  if (!host_->up()) {
    throw sim::HostCrashedError();
  }
  CIRCUS_CHECK(!closed_);
  co_await host_->DoSyscall(sim::Syscall::kSendMsg);
  network_->Transmit(host_, Datagram{local_, to, std::move(payload)});
}

void DatagramSocket::SendRaw(NetAddress to, circus::Bytes payload) {
  if (!host_->up()) {
    throw sim::HostCrashedError();
  }
  CIRCUS_CHECK(!closed_);
  network_->Transmit(host_, Datagram{local_, to, std::move(payload)});
}

sim::Task<Datagram> DatagramSocket::ReceiveRaw() {
  std::optional<Datagram> d = co_await incoming_.Receive();
  CIRCUS_CHECK(d.has_value());
  co_return std::move(*d);
}

sim::Task<Datagram> DatagramSocket::Receive() {
  std::optional<Datagram> d = co_await incoming_.Receive();
  CIRCUS_CHECK(d.has_value());
  co_await host_->DoSyscall(sim::Syscall::kRecvMsg);
  co_return std::move(*d);
}

sim::Task<std::optional<Datagram>> DatagramSocket::ReceiveWithTimeout(
    sim::Duration timeout) {
  std::optional<Datagram> d = co_await incoming_.ReceiveWithTimeout(timeout);
  if (d.has_value()) {
    co_await host_->DoSyscall(sim::Syscall::kRecvMsg);
  }
  co_return std::move(d);
}

std::optional<Datagram> DatagramSocket::Poll() {
  host_->ChargeSyscallInstant(sim::Syscall::kSelect);
  return incoming_.TryReceive();
}

void DatagramSocket::JoinGroup(HostAddress group) {
  CIRCUS_CHECK(!closed_);
  network_->JoinGroup(group, this);
  joined_groups_.push_back(group);
}

void DatagramSocket::LeaveGroup(HostAddress group) {
  network_->LeaveGroup(group, this);
  std::erase(joined_groups_, group);
}

}  // namespace circus::net
