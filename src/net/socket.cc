#include "src/net/socket.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"

namespace circus::net {

DatagramSocket::DatagramSocket(Fabric* fabric, sim::Host* host)
    : fabric_(fabric), host_(host), incoming_(host) {
  CIRCUS_CHECK_MSG(host->up(), "cannot open socket on a crashed host");
}

DatagramSocket::DatagramSocket(Fabric* fabric, sim::Host* host, Port port)
    : DatagramSocket(fabric, host) {
  circus::StatusOr<NetAddress> bound = fabric_->Bind(this, port);
  CIRCUS_CHECK_MSG(bound.ok(), bound.status().ToString().c_str());
  FinishBind(*bound);
}

circus::StatusOr<std::unique_ptr<DatagramSocket>> DatagramSocket::Open(
    Fabric* fabric, sim::Host* host, Port port) {
  std::unique_ptr<DatagramSocket> socket(new DatagramSocket(fabric, host));
  circus::StatusOr<NetAddress> bound = fabric->Bind(socket.get(), port);
  if (!bound.ok()) {
    return bound.status();
  }
  socket->FinishBind(*bound);
  return socket;
}

void DatagramSocket::FinishBind(NetAddress local) {
  local_ = local;
  bound_ = true;
  crash_listener_ = host_->AddCrashListener([this] {
    // Fail-stop: the socket vanishes with the machine.
    fabric_->Unbind(this);
    bound_ = false;
    closed_ = true;
  });
}

DatagramSocket::~DatagramSocket() { Close(); }

void DatagramSocket::Close() {
  if (closed_) {
    return;
  }
  closed_ = true;
  if (bound_) {
    fabric_->Unbind(this);
    bound_ = false;
    host_->RemoveCrashListener(crash_listener_);
  }
}

sim::Task<circus::Status> DatagramSocket::Send(NetAddress to,
                                               circus::Bytes payload) {
  if (!host_->up()) {
    throw sim::HostCrashedError();
  }
  if (closed_) {
    co_return circus::Status(circus::ErrorCode::kFailedPrecondition,
                             "send on closed socket");
  }
  co_await host_->DoSyscall(sim::Syscall::kSendMsg);
  fabric_->Transmit(host_, Datagram{local_, to, std::move(payload)});
  co_return circus::Status::Ok();
}

circus::Status DatagramSocket::SendRaw(NetAddress to, circus::Bytes payload) {
  if (!host_->up()) {
    throw sim::HostCrashedError();
  }
  if (closed_) {
    return circus::Status(circus::ErrorCode::kFailedPrecondition,
                          "send on closed socket");
  }
  fabric_->Transmit(host_, Datagram{local_, to, std::move(payload)});
  return circus::Status::Ok();
}

sim::Task<Datagram> DatagramSocket::ReceiveRaw() {
  std::optional<Datagram> d = co_await incoming_.Receive();
  CIRCUS_CHECK(d.has_value());
  co_return std::move(*d);
}

sim::Task<Datagram> DatagramSocket::Receive() {
  std::optional<Datagram> d = co_await incoming_.Receive();
  CIRCUS_CHECK(d.has_value());
  co_await host_->DoSyscall(sim::Syscall::kRecvMsg);
  co_return std::move(*d);
}

sim::Task<std::optional<Datagram>> DatagramSocket::ReceiveWithTimeout(
    sim::Duration timeout) {
  std::optional<Datagram> d = co_await incoming_.ReceiveWithTimeout(timeout);
  if (d.has_value()) {
    co_await host_->DoSyscall(sim::Syscall::kRecvMsg);
  }
  co_return std::move(d);
}

std::optional<Datagram> DatagramSocket::Poll() {
  host_->ChargeSyscallInstant(sim::Syscall::kSelect);
  return incoming_.TryReceive();
}

void DatagramSocket::JoinGroup(HostAddress group) {
  CIRCUS_CHECK(!closed_);
  fabric_->JoinGroup(group, this);
  joined_groups_.push_back(group);
}

void DatagramSocket::LeaveGroup(HostAddress group) {
  fabric_->LeaveGroup(group, this);
  std::erase(joined_groups_, group);
}

}  // namespace circus::net
