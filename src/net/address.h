// Internet-style process addressing, following Section 4.2.1 of the
// dissertation: a process address is a 32-bit host address plus a 16-bit
// port number. Addresses with the historical class-D prefix (top nibble
// 0xE) are multicast group addresses; the dissertation notes (Section
// 4.3.7) that an Ethernet multicast capability would let a single send
// reach an entire troupe, and the simulated network provides exactly that.
#ifndef SRC_NET_ADDRESS_H_
#define SRC_NET_ADDRESS_H_

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace circus::net {

using HostAddress = uint32_t;
using Port = uint16_t;

inline constexpr HostAddress kMulticastBase = 0xE0000000u;

constexpr bool IsMulticastHost(HostAddress h) {
  return (h & 0xF0000000u) == kMulticastBase;
}

struct NetAddress {
  HostAddress host = 0;
  Port port = 0;

  constexpr auto operator<=>(const NetAddress&) const = default;

  bool is_multicast() const { return IsMulticastHost(host); }

  // Dotted-quad rendering, e.g. "10.0.0.3:9000".
  std::string ToString() const;
};

struct NetAddressHash {
  size_t operator()(const NetAddress& a) const {
    return std::hash<uint64_t>()(
        (static_cast<uint64_t>(a.host) << 16) | a.port);
  }
};

// Makes a unicast host address in the simulated 10.0.0.0/8 net.
constexpr HostAddress MakeHostAddress(uint32_t index) {
  return (10u << 24) | (index + 1);
}

// Makes a multicast group address from a small group index.
constexpr HostAddress MakeMulticastAddress(uint32_t group) {
  return kMulticastBase | (group + 1);
}

}  // namespace circus::net

#endif  // SRC_NET_ADDRESS_H_
