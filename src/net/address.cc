#include "src/net/address.h"

#include <cstdio>

namespace circus::net {

std::string NetAddress::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u:%u", (host >> 24) & 0xFF,
                (host >> 16) & 0xFF, (host >> 8) & 0xFF, host & 0xFF, port);
  return buf;
}

}  // namespace circus::net
