// World: one simulated distributed system — an executor, a set of
// fail-stop hosts, and the network connecting them. Mirrors the paper's
// testbed of six identically configured VAX-11/750s on one Ethernet
// (Section 4.4.1); tests and benches build whatever topology they need.
#ifndef SRC_NET_WORLD_H_
#define SRC_NET_WORLD_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/net/network.h"
#include "src/net/tap.h"
#include "src/obs/bus.h"
#include "src/obs/metrics.h"
#include "src/obs/util.h"
#include "src/sim/executor.h"
#include "src/sim/host.h"
#include "src/sim/random.h"

namespace circus::net {

class World {
 public:
  explicit World(uint64_t seed = 1,
                 sim::SyscallCostModel cost_model =
                     sim::SyscallCostModel::Berkeley42Bsd());
  World(const World&) = delete;
  World& operator=(const World&) = delete;
  // Crashes every host and drains the executor so that all protocol
  // coroutines unwind before members are destroyed.
  ~World();

  sim::Executor& executor() { return executor_; }
  Network& network() { return network_; }
  sim::Rng& rng() { return rng_; }

  // The observability hub: one event bus + metrics registry per World,
  // stamped with this world's simulated clock. Protocol layers reach
  // them through the Network; tests and exporters subscribe here.
  obs::EventBus& bus() { return bus_; }
  obs::MetricsRegistry& metrics() { return metrics_; }
  // host id -> host name, for exporter process_name metadata.
  std::map<uint32_t, std::string> HostNames() const;

  // Creates a host with the world's cost model and the next 10.x.y.z
  // address.
  sim::Host* AddHost(const std::string& name);
  // Creates `n` hosts named <prefix>0..<prefix>n-1.
  std::vector<sim::Host*> AddHosts(const std::string& prefix, int n);

  sim::Host* host(size_t index) { return hosts_[index].get(); }
  size_t host_count() const { return hosts_.size(); }

  HostAddress AddressOf(const sim::Host* host) const {
    return network_.AddressOfHost(host->id());
  }

  // Starts mirroring every datagram the network carries (both
  // directions, simulated-clock timestamps) into a wire capture. An
  // empty `path` keeps the capture in memory only — the chaos harness
  // audits Recent() without touching disk. Returns the writer for
  // Flush()/Recent(); it lives until the World is destroyed. Calling
  // again replaces the capture.
  WireTapWriter& CapturePackets(const std::string& path = "",
                                size_t capacity = 1 << 16);
  WireTapWriter* packet_capture() { return tap_.get(); }

  // Registers this world's resources on a utilization monitor: one
  // cpu.<host> per host added so far (call after topology is built),
  // the executor run queue, and the network (packets, bytes, losses,
  // receive backlog). The caller attaches bus/metrics sinks and drives
  // monitor->Sample() between RunFor steps; everything runs on virtual
  // time, so same-seed runs report byte-identical snapshots.
  void WireUtilization(obs::UtilizationMonitor* monitor);

  // Convenience wrappers over the executor.
  void RunUntilIdle() { executor_.RunUntilIdle(); }
  void RunFor(sim::Duration d) { executor_.RunFor(d); }
  sim::TimePoint now() const { return executor_.now(); }

 private:
  sim::Rng rng_;
  // The hub is declared before the network and hosts so that protocol
  // teardown (which may still publish) never outlives it.
  obs::EventBus bus_;
  obs::MetricsRegistry metrics_;
  sim::Executor executor_;
  Network network_;
  sim::SyscallCostModel cost_model_;
  std::unique_ptr<WireTapWriter> tap_;
  std::vector<std::unique_ptr<sim::Host>> hosts_;
  uint32_t next_host_index_ = 0;
};

}  // namespace circus::net

#endif  // SRC_NET_WORLD_H_
