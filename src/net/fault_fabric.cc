#include "src/net/fault_fabric.h"

#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

#include "src/common/check.h"
#include "src/net/socket.h"

namespace circus::net {
namespace {

// A held-back datagram is released after the next transmit overtakes it;
// the flush timer bounds the inversion when no successor ever comes.
constexpr sim::Duration kReorderFlushAfter = sim::Duration::Millis(20);

bool ParseProbability(std::string_view text, double* out) {
  std::istringstream in{std::string(text)};
  double v = 0.0;
  if (!(in >> v) || v < 0.0 || v > 1.0) {
    return false;
  }
  *out = v;
  return true;
}

bool ParseMillis(std::string_view text, sim::Duration* out) {
  std::istringstream in{std::string(text)};
  double ms = 0.0;
  if (!(in >> ms) || ms < 0.0) {
    return false;
  }
  *out = sim::Duration::MillisF(ms);
  return true;
}

}  // namespace

FaultFabric::FaultFabric(Fabric* inner, sim::Executor* executor,
                         uint64_t seed)
    : inner_(inner), executor_(executor), seed_(seed), rng_(seed) {
  CIRCUS_CHECK(inner != nullptr);
  CIRCUS_CHECK(executor != nullptr);
}

FaultFabric::~FaultFabric() {
  for (uint64_t id : pending_events_) {
    executor_->Cancel(id);
  }
  if (held_flush_event_ != 0) {
    executor_->Cancel(held_flush_event_);
  }
}

HostAddress FaultFabric::AddressOfHost(sim::Host::HostId id) const {
  return inner_->AddressOfHost(id);
}

void FaultFabric::Reseed(uint64_t seed) {
  seed_ = seed;
  rng_ = sim::Rng(seed);
}

void FaultFabric::PartitionEndpoints(std::vector<NetAddress> island) {
  island_.clear();
  island_.insert(island.begin(), island.end());
}

void FaultFabric::Heal() { island_.clear(); }

circus::StatusOr<NetAddress> FaultFabric::Bind(DatagramSocket* socket,
                                               Port port) {
  return inner_->Bind(socket, port);
}

void FaultFabric::Unbind(DatagramSocket* socket) {
  inner_->Unbind(socket);
}

void FaultFabric::JoinGroup(HostAddress group, DatagramSocket* socket) {
  inner_->JoinGroup(group, socket);
}

void FaultFabric::LeaveGroup(HostAddress group, DatagramSocket* socket) {
  inner_->LeaveGroup(group, socket);
}

bool FaultFabric::PartitionBlocks(const Datagram& d) const {
  if (island_.empty()) {
    return false;
  }
  const bool src_in = island_.count(d.source) > 0;
  const bool dst_in =
      !d.destination.is_multicast() && island_.count(d.destination) > 0;
  return src_in != dst_in;
}

void FaultFabric::Transmit(sim::Host* sender, Datagram datagram) {
  // Observe on the inner fabric — that is where the tap, the packet
  // observer, and the event bus live — exactly once, before any fault.
  inner_->ObserveSend(sender, datagram);
  ++stats_.transmitted;

  if (PartitionBlocks(datagram)) {
    ++stats_.blocked_by_partition;
    if (decision_log_ != nullptr) {
      decision_log_->push_back("pdrop");
    }
    return;
  }

  // Fixed draw order — drop, duplicate, reorder, jitter — so the
  // decision stream is a pure function of (seed, send sequence),
  // independent of which inner fabric sits underneath.
  if (rng_.Bernoulli(plan_.drop)) {
    ++stats_.dropped;
    if (decision_log_ != nullptr) {
      decision_log_->push_back("drop");
    }
    return;
  }
  const bool duplicate = rng_.Bernoulli(plan_.duplicate);
  const bool reorder = rng_.Bernoulli(plan_.reorder);
  sim::Duration delay = plan_.delay;
  if (plan_.jitter > sim::Duration::Zero()) {
    delay = delay + rng_.Exponential(plan_.jitter);
  }

  if (decision_log_ != nullptr) {
    char line[64];
    std::snprintf(line, sizeof(line), "%s delay=%" PRId64 "us",
                  reorder ? "hold" : (duplicate ? "dup" : "fwd"),
                  delay.nanos() / 1000);
    decision_log_->push_back(line);
  }

  if (reorder && !held_.has_value()) {
    ++stats_.reordered;
    held_ = HeldDatagram{sender, std::move(datagram), delay};
    held_flush_event_ = executor_->ScheduleAfter(
        kReorderFlushAfter, [this] {
          held_flush_event_ = 0;
          FlushHeld();
        });
    return;
  }

  Forward(sender, datagram, delay);
  if (duplicate) {
    ++stats_.duplicated;
    Forward(sender, datagram, delay);
  }
  // This datagram has overtaken the held one; release it.
  FlushHeld();
}

void FaultFabric::FlushHeld() {
  if (!held_.has_value()) {
    return;
  }
  if (held_flush_event_ != 0) {
    executor_->Cancel(held_flush_event_);
    held_flush_event_ = 0;
  }
  HeldDatagram held = std::move(*held_);
  held_.reset();
  Forward(held.sender, held.datagram, held.delay);
}

void FaultFabric::Forward(sim::Host* sender, const Datagram& d,
                          sim::Duration delay) {
  if (delay <= sim::Duration::Zero()) {
    SendThrough(sender, d);
    return;
  }
  ++stats_.delayed;
  auto id_slot = std::make_shared<uint64_t>(0);
  const uint64_t id = executor_->ScheduleAfter(
      delay, [this, sender, d, id_slot] {
        pending_events_.erase(*id_slot);
        if (sender->up()) {
          SendThrough(sender, d);
        }
      });
  *id_slot = id;
  pending_events_.insert(id);
}

void FaultFabric::SendThrough(sim::Host* sender, Datagram d) {
  inner_->suppress_send_observation_ = true;
  inner_->Transmit(sender, std::move(d));
  inner_->suppress_send_observation_ = false;
}

std::optional<NetAddress> FaultFabric::ParseEndpoint(
    std::string_view text) {
  NetAddress out;
  const size_t colon = text.rfind(':');
  std::string_view host_part;
  std::string_view port_part = text;
  if (colon != std::string_view::npos) {
    host_part = text.substr(0, colon);
    port_part = text.substr(colon + 1);
  }
  unsigned port = 0;
  auto [p, ec] = std::from_chars(port_part.data(),
                                 port_part.data() + port_part.size(), port);
  if (ec != std::errc() || p != port_part.data() + port_part.size() ||
      port == 0 || port > 65535) {
    return std::nullopt;
  }
  out.port = static_cast<Port>(port);
  if (host_part.empty()) {
    out.host = 0x7F000001u;  // bare port: loopback
    return out;
  }
  uint32_t host = 0;
  int quads = 0;
  const char* cur = host_part.data();
  const char* end = host_part.data() + host_part.size();
  while (cur < end && quads < 4) {
    unsigned quad = 0;
    auto [q, qec] = std::from_chars(cur, end, quad);
    if (qec != std::errc() || quad > 255) {
      return std::nullopt;
    }
    host = (host << 8) | quad;
    ++quads;
    cur = q;
    if (cur < end) {
      if (*cur != '.') {
        return std::nullopt;
      }
      ++cur;
    }
  }
  if (quads != 4 || cur != end) {
    return std::nullopt;
  }
  out.host = host;
  return out;
}

std::string FaultFabric::StatusLine() const {
  std::ostringstream out;
  out << "seed=" << seed_ << " loss=" << plan_.drop
      << " dup=" << plan_.duplicate << " reorder=" << plan_.reorder
      << " delay_ms=" << plan_.delay.ToMillisF()
      << " jitter_ms=" << plan_.jitter.ToMillisF() << " partition=[";
  bool first = true;
  for (const NetAddress& a : island_) {
    if (!first) {
      out << ",";
    }
    first = false;
    out << a.ToString();
  }
  out << "] transmitted=" << stats_.transmitted
      << " dropped=" << stats_.dropped << " dup_sent=" << stats_.duplicated
      << " reordered=" << stats_.reordered
      << " pblocked=" << stats_.blocked_by_partition;
  return out.str();
}

circus::StatusOr<std::string> FaultFabric::ApplyCommand(
    std::string_view command) {
  std::istringstream in{std::string(command)};
  std::string verb;
  if (!(in >> verb)) {
    return circus::Status(ErrorCode::kInvalidArgument, "empty fault command");
  }
  auto rest_tokens = [&in] {
    std::vector<std::string> tokens;
    std::string t;
    while (in >> t) {
      tokens.push_back(t);
    }
    return tokens;
  };
  auto one_arg = [&](const char* what) -> circus::StatusOr<std::string> {
    std::string arg;
    if (!(in >> arg)) {
      return circus::Status(ErrorCode::kInvalidArgument,
                            std::string("missing argument: ") + what);
    }
    std::string extra;
    if (in >> extra) {
      return circus::Status(ErrorCode::kInvalidArgument,
                            std::string("trailing arguments after ") + what);
    }
    return arg;
  };

  if (verb == "status") {
    return StatusLine();
  }
  if (verb == "heal") {
    Heal();
    return std::string("ok");
  }
  if (verb == "clear") {
    plan_ = FaultInjectionPlan{};
    Heal();
    return std::string("ok");
  }
  if (verb == "seed") {
    auto arg = one_arg("seed");
    if (!arg.ok()) {
      return arg.status();
    }
    uint64_t seed = 0;
    const std::string& s = *arg;
    auto [p, ec] = std::from_chars(s.data(), s.data() + s.size(), seed);
    if (ec != std::errc() || p != s.data() + s.size()) {
      return circus::Status(ErrorCode::kInvalidArgument,
                            "bad seed: " + s);
    }
    Reseed(seed);
    return std::string("ok");
  }
  if (verb == "loss" || verb == "dup" || verb == "reorder") {
    auto arg = one_arg(verb.c_str());
    if (!arg.ok()) {
      return arg.status();
    }
    double p = 0.0;
    if (!ParseProbability(*arg, &p)) {
      return circus::Status(ErrorCode::kInvalidArgument,
                            "probability not in [0,1]: " + *arg);
    }
    if (verb == "loss") {
      plan_.drop = p;
    } else if (verb == "dup") {
      plan_.duplicate = p;
    } else {
      plan_.reorder = p;
    }
    return std::string("ok");
  }
  if (verb == "delay_ms" || verb == "jitter_ms") {
    auto arg = one_arg(verb.c_str());
    if (!arg.ok()) {
      return arg.status();
    }
    sim::Duration d;
    if (!ParseMillis(*arg, &d)) {
      return circus::Status(ErrorCode::kInvalidArgument,
                            "bad duration (ms): " + *arg);
    }
    if (verb == "delay_ms") {
      plan_.delay = d;
    } else {
      plan_.jitter = d;
    }
    return std::string("ok");
  }
  if (verb == "partition") {
    std::vector<NetAddress> island;
    for (const std::string& token : rest_tokens()) {
      std::optional<NetAddress> a = ParseEndpoint(token);
      if (!a.has_value()) {
        return circus::Status(ErrorCode::kInvalidArgument,
                              "bad endpoint: " + token);
      }
      island.push_back(*a);
    }
    if (island.empty()) {
      return circus::Status(ErrorCode::kInvalidArgument,
                            "partition needs at least one endpoint");
    }
    PartitionEndpoints(std::move(island));
    return std::string("ok");
  }
  return circus::Status(ErrorCode::kInvalidArgument,
                        "unknown fault command: " + verb);
}

}  // namespace circus::net
