#include "src/binding/client.h"

#include <utility>

#include "src/binding/codec.h"
#include "src/binding/ringmaster.h"
#include "src/common/log.h"
#include "src/marshal/marshal.h"

namespace circus::binding {

using circus::Status;
using circus::StatusOr;
using core::ModuleAddress;
using core::Troupe;
using core::TroupeId;
using sim::Task;

BindingClient::BindingClient(core::RpcProcess* process,
                             core::Troupe ringmaster)
    : process_(process), ringmaster_(std::move(ringmaster)) {}

Task<StatusOr<circus::Bytes>> BindingClient::Invoke(
    core::ProcedureNumber proc, circus::Bytes args) {
  // Binding traffic is runtime-internal: each process talks to the
  // binding agent on its own behalf, so the call is unreplicated even if
  // the process belongs to a troupe.
  core::CallOptions opts;
  opts.as_unreplicated_client = true;
  const core::ModuleNumber module =
      ringmaster_.members.empty() ? 0 : ringmaster_.members.front().module;
  co_return co_await process_->Call(process_->NewRootThread(), ringmaster_,
                                    module, proc, std::move(args), opts);
}

Task<StatusOr<TroupeId>> BindingClient::RegisterTroupe(
    const std::string& name, const Troupe& troupe) {
  marshal::Writer w;
  w.WriteString(name);
  WriteTroupe(w, troupe);
  StatusOr<circus::Bytes> r =
      co_await Invoke(kRegisterTroupe, w.Take());
  if (!r.ok()) {
    co_return r.status();
  }
  marshal::Reader reader(*r);
  const TroupeId id{reader.ReadU64()};
  if (!reader.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad register result");
  }
  co_return id;
}

Task<StatusOr<TroupeId>> BindingClient::AddTroupeMember(
    const std::string& name, ModuleAddress member) {
  marshal::Writer w;
  w.WriteString(name);
  WriteModuleAddress(w, member);
  StatusOr<circus::Bytes> r =
      co_await Invoke(kAddTroupeMember, w.Take());
  if (!r.ok()) {
    co_return r.status();
  }
  marshal::Reader reader(*r);
  const TroupeId id{reader.ReadU64()};
  if (!reader.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad add_member result");
  }
  co_return id;
}

Task<StatusOr<TroupeId>> BindingClient::RemoveTroupeMember(
    const std::string& name, ModuleAddress member) {
  marshal::Writer w;
  w.WriteString(name);
  WriteModuleAddress(w, member);
  StatusOr<circus::Bytes> r =
      co_await Invoke(kRemoveTroupeMember, w.Take());
  if (!r.ok()) {
    co_return r.status();
  }
  marshal::Reader reader(*r);
  const TroupeId id{reader.ReadU64()};
  if (!reader.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad remove_member result");
  }
  co_return id;
}

Task<StatusOr<Troupe>> BindingClient::LookupByName(const std::string& name) {
  marshal::Writer w;
  w.WriteString(name);
  StatusOr<circus::Bytes> r = co_await Invoke(kLookupByName, w.Take());
  if (!r.ok()) {
    co_return r.status();
  }
  marshal::Reader reader(*r);
  Troupe t = ReadTroupe(reader);
  if (!reader.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad lookup result");
  }
  co_return t;
}

Task<StatusOr<Troupe>> BindingClient::LookupById(TroupeId id) {
  marshal::Writer w;
  w.WriteU64(id.value);
  StatusOr<circus::Bytes> r = co_await Invoke(kLookupById, w.Take());
  if (!r.ok()) {
    co_return r.status();
  }
  marshal::Reader reader(*r);
  Troupe t = ReadTroupe(reader);
  if (!reader.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad lookup result");
  }
  co_return t;
}

Task<StatusOr<Troupe>> BindingClient::Rebind(const std::string& name,
                                             TroupeId stale) {
  marshal::Writer w;
  w.WriteString(name);
  w.WriteU64(stale.value);
  StatusOr<circus::Bytes> r = co_await Invoke(kRebind, w.Take());
  if (!r.ok()) {
    co_return r.status();
  }
  marshal::Reader reader(*r);
  Troupe t = ReadTroupe(reader);
  if (!reader.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad rebind result");
  }
  co_return t;
}

Task<StatusOr<std::vector<std::string>>> BindingClient::Enumerate() {
  StatusOr<circus::Bytes> r = co_await Invoke(kEnumerate, {});
  if (!r.ok()) {
    co_return r.status();
  }
  marshal::Reader reader(*r);
  std::vector<std::string> names = reader.ReadSequence<std::string>(
      [](marshal::Reader& rr) { return rr.ReadString(); });
  if (!reader.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad enumerate result");
  }
  co_return names;
}

// ---------------------------------------------------------------------
// BindingCache

Task<StatusOr<Troupe>> BindingCache::Import(const std::string& name) {
  auto it = by_name_.find(name);
  if (it != by_name_.end()) {
    co_return it->second;
  }
  StatusOr<Troupe> t = co_await client_->LookupByName(name);
  if (t.ok()) {
    by_name_[name] = *t;
    by_id_[t->id] = *t;
  }
  co_return t;
}

Task<StatusOr<Troupe>> BindingCache::ResolveId(TroupeId id) {
  auto it = by_id_.find(id);
  if (it != by_id_.end()) {
    co_return it->second;
  }
  StatusOr<Troupe> t = co_await client_->LookupById(id);
  if (t.ok()) {
    by_id_[id] = *t;
  }
  co_return t;
}

sim::Rng& BindingCache::BackoffRng(core::RpcProcess* process) {
  if (!backoff_rng_.has_value()) {
    // Clock + address seeding, the same idiom as the per-process call
    // numbers: two clients that fail in lockstep still draw different
    // jitter streams.
    const net::NetAddress self = process->process_address();
    const uint64_t seed =
        (static_cast<uint64_t>(self.host) << 16) ^ self.port ^
        static_cast<uint64_t>(
            process->host()->executor().now().nanos());
    backoff_rng_.emplace(seed);
  }
  return *backoff_rng_;
}

Task<StatusOr<circus::Bytes>> BindingCache::CallByName(
    core::RpcProcess* process, core::ThreadId thread,
    const std::string& name, core::ProcedureNumber procedure,
    circus::Bytes args, core::CallOptions opts, int max_rebinds) {
  for (int attempt = 0; attempt <= max_rebinds; ++attempt) {
    if (attempt > 0) {
      // Desynchronized retry (full jitter): a fixed retry interval
      // would march every stale client back at the same instant.
      const sim::Duration delay =
          BackoffDelay(backoff_policy_, attempt - 1, BackoffRng(process));
      if (retry_observer_) {
        retry_observer_(attempt - 1, delay);
      }
      co_await process->host()->SleepFor(delay);
    }
    StatusOr<Troupe> troupe = co_await Import(name);
    if (!troupe.ok()) {
      co_return troupe.status();
    }
    const core::ModuleNumber module = troupe->members.front().module;
    StatusOr<circus::Bytes> r = co_await process->Call(
        thread, *troupe, module, procedure, args, opts);
    if (r.ok() || r.status().code() != ErrorCode::kStaleBinding) {
      co_return r;
    }
    // Masking stale binding information (Section 6.1): invalidate,
    // rebind, retry.
    Invalidate(name);
    StatusOr<Troupe> fresh = co_await client_->Rebind(name, troupe->id);
    if (fresh.ok()) {
      by_name_[name] = *fresh;
      by_id_[fresh->id] = *fresh;
    }
  }
  co_return Status(ErrorCode::kStaleBinding,
                   "binding for " + name + " kept going stale");
}

core::RpcProcess::TroupeResolver BindingCache::MakeResolver() {
  return [this](TroupeId id) -> Task<StatusOr<Troupe>> {
    co_return co_await ResolveId(id);
  };
}

// ---------------------------------------------------------------------
// JoinTroupe

Task<Status> JoinTroupe(core::RpcProcess* process,
                        core::ModuleNumber module, BindingClient* binding,
                        const std::string& name,
                        std::function<void(const circus::Bytes&)>
                            accept_state) {
  StatusOr<Troupe> existing = co_await binding->LookupByName(name);
  if (existing.ok() && !existing->members.empty()) {
    // Initialize our state from the existing members. The replicated
    // get_state call checks consistency across members for free (the
    // unanimous collator flags divergent replicas); an unreplicated call
    // to any single member would also suffice (Section 6.4.1).
    marshal::Writer w;
    w.WriteU16(existing->members.front().module);
    core::CallOptions opts;
    opts.as_unreplicated_client = true;
    StatusOr<circus::Bytes> state = co_await process->Call(
        process->NewRootThread(), *existing, core::kRuntimeModule,
        core::kGetState, w.Take(), opts);
    if (!state.ok()) {
      co_return state.status();
    }
    if (accept_state) {
      accept_state(*state);
    }
  }
  StatusOr<TroupeId> id = co_await binding->AddTroupeMember(
      name, process->module_address(module));
  co_return id.status();
}

// ---------------------------------------------------------------------
// GcAgent

Task<StatusOr<int>> GcAgent::SweepOnce() {
  StatusOr<std::vector<std::string>> names = co_await binding_->Enumerate();
  if (!names.ok()) {
    co_return names.status();
  }
  int collected = 0;
  for (const std::string& name : *names) {
    StatusOr<Troupe> troupe = co_await binding_->LookupByName(name);
    if (!troupe.ok()) {
      continue;
    }
    for (const ModuleAddress& member : troupe->members) {
      // The "are you there?" null call (Section 6.1).
      core::CallOptions opts;
      opts.as_unreplicated_client = true;
      StatusOr<circus::Bytes> pong = co_await process_->Call(
          process_->NewRootThread(), Troupe::Direct(member),
          core::kRuntimeModule, core::kPing, {}, opts);
      if (!pong.ok() &&
          (pong.status().code() == ErrorCode::kCrashDetected ||
           pong.status().code() == ErrorCode::kUnavailable)) {
        StatusOr<TroupeId> removed =
            co_await binding_->RemoveTroupeMember(name, member);
        if (removed.ok()) {
          ++collected;
        }
      }
    }
  }
  co_return collected;
}

}  // namespace circus::binding
