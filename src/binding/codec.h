// External representations of binding-agent types (Figure 6.1): module
// addresses, troupes, and troupe IDs as they travel in call and return
// messages between clients and the Ringmaster.
#ifndef SRC_BINDING_CODEC_H_
#define SRC_BINDING_CODEC_H_

#include "src/core/types.h"
#include "src/marshal/marshal.h"

namespace circus::binding {

inline void WriteModuleAddress(marshal::Writer& w,
                               const core::ModuleAddress& a) {
  w.WriteU32(a.process.host);
  w.WriteU16(a.process.port);
  w.WriteU16(a.module);
}

inline core::ModuleAddress ReadModuleAddress(marshal::Reader& r) {
  core::ModuleAddress a;
  a.process.host = r.ReadU32();
  a.process.port = r.ReadU16();
  a.module = r.ReadU16();
  return a;
}

inline void WriteTroupe(marshal::Writer& w, const core::Troupe& t) {
  w.WriteU64(t.id.value);
  w.WriteSequence(t.members,
                  [](marshal::Writer& writer, const core::ModuleAddress& m) {
                    WriteModuleAddress(writer, m);
                  });
}

inline core::Troupe ReadTroupe(marshal::Reader& r) {
  core::Troupe t;
  t.id.value = r.ReadU64();
  t.members = r.ReadSequence<core::ModuleAddress>(
      [](marshal::Reader& reader) { return ReadModuleAddress(reader); });
  return t;
}

}  // namespace circus::binding

#endif  // SRC_BINDING_CODEC_H_
