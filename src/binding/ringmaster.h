// The Ringmaster (Section 6.3): the binding agent for troupes. A
// specialized name server that lets programs import and export troupes by
// name. It is itself intended to run as a troupe whose procedures are
// invoked by replicated procedure calls; its handlers are deterministic
// state-machine updates, so replicas stay consistent.
//
// Troupe IDs double as incarnation numbers (Section 6.2): every
// membership change assigns a fresh ID and informs the existing members
// via set_troupe_id, so a client holding a stale member set can never
// reach only part of the troupe undetected.
#ifndef SRC_BINDING_RINGMASTER_H_
#define SRC_BINDING_RINGMASTER_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/core/process.h"
#include "src/core/types.h"

namespace circus::binding {

// Well-known port of the Ringmaster's degenerate bootstrap binding
// (Section 6.3: a well-known port on a configured set of machines).
inline constexpr net::Port kRingmasterPort = 17;

// The Ringmaster troupe's own well-known troupe ID. It cannot be
// assigned by a binding agent (the Ringmaster cannot import itself,
// Section 6.3), so it is fixed by convention, like the port.
inline constexpr core::TroupeId kRingmasterTroupeId{1};

// Name under which the Ringmaster registers its own troupe.
inline constexpr const char* kRingmasterName = "binding";

// Procedure numbers of the binding interface (Figure 6.1).
enum RingmasterProcedure : core::ProcedureNumber {
  kRegisterTroupe = 0,     // (name, troupe) -> troupe_id
  kAddTroupeMember = 1,    // (name, member) -> troupe_id
  kLookupByName = 2,       // (name) -> troupe
  kLookupById = 3,         // (troupe_id) -> troupe
  kRemoveTroupeMember = 4, // (name, member) -> troupe_id
  kRebind = 5,             // (name, stale id hint) -> troupe
  kEnumerate = 6,          // () -> sequence of names (for the GC agent)
};

// Server half: installs the binding interface into an RpcProcess. One
// RingmasterServer per troupe member process.
class RingmasterServer {
 public:
  explicit RingmasterServer(core::RpcProcess* process);

  core::ModuleNumber module_number() const { return module_; }
  core::RpcProcess* process() const { return process_; }

  // Installs the Ringmaster's own troupe in its registry under the
  // well-known ID and adopts that ID, so that replicated calls *from*
  // the Ringmaster (set_troupe_id propagation) are grouped correctly at
  // their targets. Every replica must be bootstrapped with the same
  // membership.
  void BootstrapSelf(const core::Troupe& self_troupe);

  // Registry introspection (tests, local resolver).
  size_t troupe_count() const { return by_name_.size(); }
  std::optional<core::Troupe> FindByName(const std::string& name) const;
  std::optional<core::Troupe> FindById(core::TroupeId id) const;

 private:
  struct Entry {
    core::Troupe troupe;
    uint16_t version = 0;  // bumped on every membership change
  };

  circus::StatusOr<circus::Bytes> Register(const circus::Bytes& args);
  sim::Task<circus::StatusOr<circus::Bytes>> AddMember(
      core::ServerCallContext& ctx, const circus::Bytes& args);
  sim::Task<circus::StatusOr<circus::Bytes>> RemoveMember(
      core::ServerCallContext& ctx, const circus::Bytes& args);
  circus::StatusOr<circus::Bytes> Lookup(const circus::Bytes& args,
                                         bool by_id) const;

  // Deterministic fresh ID: all replicas derive the same value from the
  // name and its monotonically increasing version.
  static core::TroupeId MakeTroupeId(const std::string& name,
                                     uint16_t version);

  // Propagates a new troupe ID to all members with a nested replicated
  // set_troupe_id call (Figure 6.2).
  sim::Task<circus::Status> PropagateTroupeId(core::ServerCallContext& ctx,
                                              const core::Troupe& troupe);

  core::RpcProcess* process_;
  core::ModuleNumber module_;
  std::map<std::string, Entry> by_name_;
  std::map<core::TroupeId, std::string> id_to_name_;
};

}  // namespace circus::binding

#endif  // SRC_BINDING_RINGMASTER_H_
