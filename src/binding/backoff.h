// Bounded exponential backoff with full jitter for retry loops that may
// run in lockstep across many processes. A fixed retry interval
// synchronizes: every client that saw the same failure retries at the
// same instant, and a recovering registry or healing partition is met by
// a thundering herd that can re-trigger the very timeouts being retried.
// Full jitter — a uniform draw in [0, min(cap, base * 2^attempt)] —
// desynchronizes the herd while keeping the expected load decay
// exponential.
#ifndef SRC_BINDING_BACKOFF_H_
#define SRC_BINDING_BACKOFF_H_

#include "src/sim/random.h"
#include "src/sim/time.h"

namespace circus::binding {

struct BackoffPolicy {
  sim::Duration base = sim::Duration::Millis(50);
  sim::Duration cap = sim::Duration::Seconds(2);
};

// The delay before retry number `attempt` (0-based). Deterministic given
// the rng state, so simulated runs stay reproducible from their seed.
inline sim::Duration BackoffDelay(const BackoffPolicy& policy, int attempt,
                                  sim::Rng& rng) {
  sim::Duration ceiling = policy.base;
  for (int i = 0; i < attempt && ceiling < policy.cap; ++i) {
    ceiling = ceiling * 2;
  }
  if (ceiling > policy.cap) {
    ceiling = policy.cap;
  }
  if (ceiling <= sim::Duration::Zero()) {
    return sim::Duration::Zero();
  }
  return sim::Duration::Nanos(rng.UniformInt(0, ceiling.nanos()));
}

}  // namespace circus::binding

#endif  // SRC_BINDING_BACKOFF_H_
