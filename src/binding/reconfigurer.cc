#include "src/binding/reconfigurer.h"

#include <set>
#include <utility>
#include <vector>

#include "src/common/log.h"
#include "src/obs/bus.h"
#include "src/obs/metrics.h"

namespace circus::binding {

using circus::Status;
using circus::StatusOr;
using core::ModuleAddress;
using core::Troupe;
using sim::Task;

Reconfigurer::Reconfigurer(core::RpcProcess* agent_process,
                           BindingClient* binding,
                           config::MachineDatabase* database)
    : agent_(agent_process),
      binding_(binding),
      database_(database),
      manager_(database) {}

void Reconfigurer::Manage(const std::string& troupe_name,
                          config::TroupeSpec spec, Launcher launcher) {
  troupe_name_ = troupe_name;
  spec_ = std::move(spec);
  launcher_ = std::move(launcher);
}

sim::Rng& Reconfigurer::BackoffRng() {
  if (!backoff_rng_.has_value()) {
    const net::NetAddress self = agent_->process_address();
    const uint64_t seed =
        (static_cast<uint64_t>(self.host) << 16) ^ self.port ^
        static_cast<uint64_t>(agent_->host()->executor().now().nanos());
    backoff_rng_.emplace(seed);
  }
  return *backoff_rng_;
}

Task<StatusOr<Troupe>> Reconfigurer::LookupWithRetry() {
  constexpr int kMaxLookupAttempts = 3;
  StatusOr<Troupe> current = Status(ErrorCode::kUnavailable, "unqueried");
  for (int attempt = 0; attempt < kMaxLookupAttempts; ++attempt) {
    if (attempt > 0) {
      const sim::Duration delay =
          BackoffDelay(backoff_policy_, attempt - 1, BackoffRng());
      if (retry_observer_) {
        retry_observer_(attempt - 1, delay);
      }
      co_await agent_->host()->SleepFor(delay);
    }
    current = co_await binding_->LookupByName(troupe_name_);
    if (current.ok() || current.status().code() == ErrorCode::kNotFound) {
      co_return current;
    }
  }
  co_return current;
}

Task<bool> Reconfigurer::MemberAlive(const ModuleAddress& member) {
  core::CallOptions opts;
  opts.as_unreplicated_client = true;
  StatusOr<circus::Bytes> pong = co_await agent_->Call(
      agent_->NewRootThread(), Troupe::Direct(member), core::kRuntimeModule,
      core::kPing, {}, opts);
  co_return pong.ok();
}

Task<StatusOr<ReconfigReport>> Reconfigurer::SweepOnce() {
  ReconfigReport report;

  // 1. Current membership (an unknown name means first instantiation).
  // Only kNotFound may be read as "no members yet": a transient lookup
  // failure mistaken for an empty troupe would launch a whole fresh
  // configuration on top of live registered members.
  std::vector<ModuleAddress> members;
  StatusOr<Troupe> current = co_await LookupWithRetry();
  if (current.ok()) {
    members = current->members;
  } else if (current.status().code() != ErrorCode::kNotFound) {
    co_return current.status();
  }

  // 2. Probe and retire the dead (Section 6.1's garbage collection,
  //    plus withdrawing their machines from service so the solver will
  //    not re-select them).
  std::vector<config::MachineId> surviving_machines;
  for (const ModuleAddress& member : members) {
    const bool alive = co_await MemberAlive(member);
    auto machine = machine_of_.find(member.process);
    if (alive) {
      if (machine != machine_of_.end()) {
        surviving_machines.push_back(machine->second);
      }
      continue;
    }
    StatusOr<core::TroupeId> removed =
        co_await binding_->RemoveTroupeMember(troupe_name_, member);
    if (removed.ok()) {
      ++report.members_removed;
    }
    if (machine != machine_of_.end()) {
      database_->RemoveMachine(machine->second);
      machine_of_.erase(machine);
    }
  }

  // 3. Solve the troupe extension problem against the survivors.
  StatusOr<config::SolveResult> solution =
      manager_.ExtendTroupe(spec_, surviving_machines);
  if (!solution.ok()) {
    co_return solution.status();
  }

  // 4. Launch and join a member on every newly selected machine.
  const std::set<config::MachineId> survivors(surviving_machines.begin(),
                                              surviving_machines.end());
  for (config::MachineId machine : solution->machines) {
    if (survivors.contains(machine)) {
      continue;
    }
    StatusOr<LaunchedMember> launched = launcher_(machine);
    if (!launched.ok()) {
      CIRCUS_LOG(LogLevel::kWarning)
          << "launch on machine " << machine
          << " failed: " << launched.status().ToString();
      continue;
    }
    // get_state transfer + add_troupe_member (Section 6.4.1).
    BindingClient member_binding(launched->process,
                                 binding_->ringmaster());
    Status joined = co_await JoinTroupe(
        launched->process, launched->module, &member_binding, troupe_name_,
        launched->accept_state);
    if (!joined.ok()) {
      CIRCUS_LOG(LogLevel::kWarning)
          << "join of replacement on machine " << machine
          << " failed: " << joined.ToString();
      continue;
    }
    machine_of_[launched->process->process_address()] = machine;
    ++report.members_added;
  }

  // 5. Retire surplus live members. A join whose add_troupe_member
  //    registered at the agent but whose reply was lost leaves a
  //    phantom: registered, alive, but not part of any solved
  //    configuration (its machine was never recorded as launched). The
  //    solver only ever extends, so trim the registry back to the
  //    solution whenever it has grown past the specified strength.
  const std::set<config::MachineId> target(solution->machines.begin(),
                                           solution->machines.end());
  StatusOr<Troupe> final_troupe =
      co_await binding_->LookupByName(troupe_name_);
  if (final_troupe.ok() &&
      final_troupe->members.size() > solution->machines.size()) {
    for (const ModuleAddress& member : final_troupe->members) {
      auto machine = machine_of_.find(member.process);
      if (machine != machine_of_.end() && target.contains(machine->second)) {
        continue;
      }
      StatusOr<core::TroupeId> removed =
          co_await binding_->RemoveTroupeMember(troupe_name_, member);
      if (removed.ok()) {
        ++report.members_removed;
      }
      if (machine != machine_of_.end()) {
        machine_of_.erase(machine);
      }
    }
    final_troupe = co_await binding_->LookupByName(troupe_name_);
  }
  report.final_size = final_troupe.ok() ? final_troupe->members.size() : 0;
  if (obs::MetricsRegistry* metrics = agent_->metrics();
      metrics != nullptr) {
    metrics->GetCounter("reconfig.sweeps")->Increment();
    metrics->GetCounter("reconfig.members_added")
        ->Add(static_cast<uint64_t>(report.members_added));
    metrics->GetCounter("reconfig.members_removed")
        ->Add(static_cast<uint64_t>(report.members_removed));
  }
  if (obs::EventBus* bus = agent_->event_bus();
      bus != nullptr && bus->active()) {
    obs::Event e;
    e.kind = obs::EventKind::kReconfigSweep;
    e.host = static_cast<uint32_t>(agent_->host()->id());
    const net::NetAddress self = agent_->process_address();
    e.origin = obs::PackAddress(self.host, self.port);
    e.a = static_cast<uint64_t>(report.members_added);
    e.b = static_cast<uint64_t>(report.members_removed);
    e.c = static_cast<uint64_t>(report.final_size);
    e.detail = troupe_name_;
    bus->Publish(std::move(e));
  }
  co_return report;
}

}  // namespace circus::binding
