// Convenience deployment of a Ringmaster troupe across a set of hosts,
// used by tests, examples, and benches. Mirrors the Section 6.3
// bootstrap: the member addresses come from configuration (here, the
// host list) and the well-known port.
#ifndef SRC_BINDING_DEPLOY_H_
#define SRC_BINDING_DEPLOY_H_

#include <memory>
#include <vector>

#include "src/binding/ringmaster.h"
#include "src/core/process.h"
#include "src/net/world.h"

namespace circus::binding {

struct RingmasterDeployment {
  std::vector<std::unique_ptr<core::RpcProcess>> processes;
  std::vector<std::unique_ptr<RingmasterServer>> servers;
  // The bootstrap binding clients use to reach the Ringmaster troupe.
  core::Troupe troupe;
};

// Starts one RingmasterServer per host, bootstraps each replica with the
// full membership, and returns the deployment.
RingmasterDeployment DeployRingmaster(net::World& world,
                                      const std::vector<sim::Host*>& hosts,
                                      core::RpcOptions options = {});

}  // namespace circus::binding

#endif  // SRC_BINDING_DEPLOY_H_
