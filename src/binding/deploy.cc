#include "src/binding/deploy.h"

namespace circus::binding {

RingmasterDeployment DeployRingmaster(net::World& world,
                                      const std::vector<sim::Host*>& hosts,
                                      core::RpcOptions options) {
  RingmasterDeployment d;
  d.troupe.id = kRingmasterTroupeId;
  for (sim::Host* host : hosts) {
    auto process = std::make_unique<core::RpcProcess>(
        &world.network(), host, kRingmasterPort, options);
    auto server = std::make_unique<RingmasterServer>(process.get());
    d.troupe.members.push_back(
        process->module_address(server->module_number()));
    d.processes.push_back(std::move(process));
    d.servers.push_back(std::move(server));
  }
  for (auto& server : d.servers) {
    server->BootstrapSelf(d.troupe);
  }
  return d;
}

}  // namespace circus::binding
