// Client-side binding machinery (Chapter 6):
//
//  * BindingClient — typed stubs for the Ringmaster interface, invoked as
//    replicated procedure calls on the (possibly replicated) Ringmaster
//    troupe, bootstrapped from well-known addresses (Section 6.3).
//  * BindingCache — import-by-name with caching and transparent rebind:
//    a call that fails with kStaleBinding invalidates the cached entry,
//    re-imports, and retries (Section 6.1). Lookups by troupe ID are
//    immutable (the ID changes with every membership change), so the ID
//    cache never goes stale — this is the Section 6.2 design point.
//  * JoinTroupe — the Section 6.4.1 recipe for a replacement member:
//    fetch the module state from the existing members with get_state,
//    internalize it, then add_troupe_member.
//  * GcAgent — the external garbage collector of Section 6.1: enumerates
//    registered troupes, probes members with the null call, and removes
//    the ones that do not respond.
#ifndef SRC_BINDING_CLIENT_H_
#define SRC_BINDING_CLIENT_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/binding/backoff.h"
#include "src/core/process.h"
#include "src/core/types.h"
#include "src/sim/random.h"

namespace circus::binding {

class BindingClient {
 public:
  // `ringmaster` is the bootstrap binding: the member addresses are
  // known out of band (well-known port + configured machine set); the
  // troupe ID is left unbound.
  BindingClient(core::RpcProcess* process, core::Troupe ringmaster);

  const core::Troupe& ringmaster() const { return ringmaster_; }

  sim::Task<circus::StatusOr<core::TroupeId>> RegisterTroupe(
      const std::string& name, const core::Troupe& troupe);
  sim::Task<circus::StatusOr<core::TroupeId>> AddTroupeMember(
      const std::string& name, core::ModuleAddress member);
  sim::Task<circus::StatusOr<core::TroupeId>> RemoveTroupeMember(
      const std::string& name, core::ModuleAddress member);
  sim::Task<circus::StatusOr<core::Troupe>> LookupByName(
      const std::string& name);
  sim::Task<circus::StatusOr<core::Troupe>> LookupById(core::TroupeId id);
  sim::Task<circus::StatusOr<core::Troupe>> Rebind(const std::string& name,
                                                   core::TroupeId stale);
  sim::Task<circus::StatusOr<std::vector<std::string>>> Enumerate();

 private:
  sim::Task<circus::StatusOr<circus::Bytes>> Invoke(
      core::ProcedureNumber proc, circus::Bytes args);

  core::RpcProcess* process_;
  core::Troupe ringmaster_;
};

class BindingCache {
 public:
  explicit BindingCache(BindingClient* client) : client_(client) {}

  // Import by interface name; cached after the first lookup.
  sim::Task<circus::StatusOr<core::Troupe>> Import(const std::string& name);
  void Invalidate(const std::string& name) { by_name_.erase(name); }

  // Resolve a troupe ID; safe to cache forever (IDs are incarnations).
  sim::Task<circus::StatusOr<core::Troupe>> ResolveId(core::TroupeId id);

  // A replicated call with transparent rebinding: on kStaleBinding the
  // cache re-imports `name` and retries, up to `max_rebinds` times.
  sim::Task<circus::StatusOr<circus::Bytes>> CallByName(
      core::RpcProcess* process, core::ThreadId thread,
      const std::string& name, core::ProcedureNumber procedure,
      circus::Bytes args, core::CallOptions opts = {}, int max_rebinds = 2);

  // A resolver suitable for RpcProcess::SetClientTroupeResolver.
  core::RpcProcess::TroupeResolver MakeResolver();

  size_t cached_names() const { return by_name_.size(); }

  // Backoff between rebind retries (full jitter, capped). The jitter
  // stream is seeded from the calling process's address and clock on
  // first use, so concurrent clients that go stale together do not
  // retry together.
  void set_backoff_policy(const BackoffPolicy& policy) {
    backoff_policy_ = policy;
  }
  // Test hook: observes every retry sleep (attempt number, chosen
  // delay) before it happens.
  using RetrySleepObserver = std::function<void(int, sim::Duration)>;
  void set_retry_sleep_observer(RetrySleepObserver observer) {
    retry_observer_ = std::move(observer);
  }

 private:
  sim::Rng& BackoffRng(core::RpcProcess* process);

  BindingClient* client_;
  std::map<std::string, core::Troupe> by_name_;
  std::map<core::TroupeId, core::Troupe> by_id_;
  BackoffPolicy backoff_policy_;
  std::optional<sim::Rng> backoff_rng_;
  RetrySleepObserver retry_observer_;
};

// Brings `process`'s module `module` into the troupe named `name`:
// transfers state from the existing members (if any) through get_state,
// hands it to `accept_state`, and registers with the binding agent. The
// dissertation brackets the two steps in one atomic transaction
// (Section 6.4.1); see src/txn for the transactional variant.
sim::Task<circus::Status> JoinTroupe(
    core::RpcProcess* process, core::ModuleNumber module,
    BindingClient* binding, const std::string& name,
    std::function<void(const circus::Bytes&)> accept_state);

// External garbage collector: probes every member of every registered
// troupe with the null call and removes the silent ones.
class GcAgent {
 public:
  GcAgent(core::RpcProcess* process, BindingClient* binding)
      : process_(process), binding_(binding) {}

  // One sweep; returns the number of members collected.
  sim::Task<circus::StatusOr<int>> SweepOnce();

 private:
  core::RpcProcess* process_;
  BindingClient* binding_;
};

}  // namespace circus::binding

#endif  // SRC_BINDING_CLIENT_H_
