// The troupe reconfigurer: the programming-in-the-large maintenance loop
// the dissertation sketches across Sections 6.4 and 7.5.3. Given a
// troupe specification in the configuration language and a launcher that
// can instantiate a module on a machine (the paper's per-machine
// instantiation servers), a sweep:
//
//   1. probes every registered member with the null call and removes the
//      dead ones from the binding agent (garbage collection, Section 6.1)
//      and withdraws their machines from the attribute database;
//   2. solves the troupe extension problem for the surviving member set
//      (minimal symmetric difference, Section 7.5.3);
//   3. launches a member on each newly selected machine and brings it up
//      to date with the get_state transfer before registering it
//      (Section 6.4.1).
//
// Run periodically, this keeps the troupe at the specified strength; how
// quickly it must run for a target availability is exactly the
// replacement-time analysis of Section 6.4.2 (see bench_availability).
#ifndef SRC_BINDING_RECONFIGURER_H_
#define SRC_BINDING_RECONFIGURER_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>

#include "src/binding/backoff.h"
#include "src/binding/client.h"
#include "src/config/manager.h"
#include "src/config/ast.h"
#include "src/core/process.h"
#include "src/sim/random.h"

namespace circus::binding {

struct ReconfigReport {
  int members_removed = 0;
  int members_added = 0;
  size_t final_size = 0;
};

class Reconfigurer {
 public:
  // What a launcher returns: a freshly created troupe member process
  // with its module exported and a way to install transferred state.
  struct LaunchedMember {
    core::RpcProcess* process = nullptr;
    core::ModuleNumber module = 0;
    std::function<void(const circus::Bytes&)> accept_state;
  };
  // Instantiates the managed module on `machine`; the returned process
  // is owned by the launcher's environment and must outlive the troupe.
  using Launcher =
      std::function<circus::StatusOr<LaunchedMember>(config::MachineId)>;

  // `agent_process` performs the probing and registry calls; `database`
  // is mutated: machines whose members die are withdrawn from service.
  Reconfigurer(core::RpcProcess* agent_process, BindingClient* binding,
               config::MachineDatabase* database);

  // Declares the troupe to manage: its name, its specification, the
  // launcher, and the machine each process address corresponds to
  // (maintained as members come and go).
  void Manage(const std::string& troupe_name, config::TroupeSpec spec,
              Launcher launcher);
  // Records that `address` lives on `machine` (launch bookkeeping for
  // pre-existing members).
  void NoteMemberMachine(net::NetAddress address,
                         config::MachineId machine) {
    machine_of_[address] = machine;
  }

  // One maintenance pass over the managed troupe. Also performs the
  // initial instantiation when the troupe does not exist yet.
  sim::Task<circus::StatusOr<ReconfigReport>> SweepOnce();

  // Backoff between registry re-lookups (full jitter, capped): under a
  // partition every reconfigurer's sweep fails at once, and a fixed
  // retry interval would send them all back in lockstep when it heals.
  void set_backoff_policy(const BackoffPolicy& policy) {
    backoff_policy_ = policy;
  }
  // Test hook: observes every retry sleep (attempt, chosen delay).
  using RetrySleepObserver = std::function<void(int, sim::Duration)>;
  void set_retry_sleep_observer(RetrySleepObserver observer) {
    retry_observer_ = std::move(observer);
  }

 private:
  sim::Task<bool> MemberAlive(const core::ModuleAddress& member);
  // LookupByName with backoff on transient failures; kNotFound is an
  // answer (first instantiation), never retried.
  sim::Task<circus::StatusOr<core::Troupe>> LookupWithRetry();
  sim::Rng& BackoffRng();

  core::RpcProcess* agent_;
  BindingClient* binding_;
  config::MachineDatabase* database_;
  config::ConfigurationManager manager_;
  std::string troupe_name_;
  config::TroupeSpec spec_;
  Launcher launcher_;
  std::map<net::NetAddress, config::MachineId> machine_of_;
  BackoffPolicy backoff_policy_;
  std::optional<sim::Rng> backoff_rng_;
  RetrySleepObserver retry_observer_;
};

}  // namespace circus::binding

#endif  // SRC_BINDING_RECONFIGURER_H_
