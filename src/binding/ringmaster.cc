#include "src/binding/ringmaster.h"

#include <algorithm>
#include <utility>

#include "src/binding/codec.h"
#include "src/common/log.h"
#include "src/marshal/marshal.h"
#include "src/obs/bus.h"

namespace circus::binding {

using circus::Status;
using circus::StatusOr;
using core::ModuleAddress;
using core::Troupe;
using core::TroupeId;
using sim::Task;

namespace {

uint64_t Fnv64(const std::string& s) {
  uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

circus::Bytes EncodeId(TroupeId id) {
  marshal::Writer w;
  w.WriteU64(id.value);
  return w.Take();
}

circus::Bytes EncodeTroupeResult(const Troupe& t) {
  marshal::Writer w;
  WriteTroupe(w, t);
  return w.Take();
}

// Publishes a binding-registry event (a = the troupe's new ID value,
// detail = registered name / member address as noted in obs/event.h).
void PublishBindingEvent(core::RpcProcess* process, obs::EventKind kind,
                         TroupeId id, std::string detail) {
  obs::EventBus* bus = process->event_bus();
  if (bus == nullptr || !bus->active()) {
    return;
  }
  obs::Event e;
  e.kind = kind;
  e.host = static_cast<uint32_t>(process->host()->id());
  const net::NetAddress self = process->process_address();
  e.origin = obs::PackAddress(self.host, self.port);
  e.a = id.value;
  e.detail = std::move(detail);
  bus->Publish(std::move(e));
}

}  // namespace

core::TroupeId RingmasterServer::MakeTroupeId(const std::string& name,
                                              uint16_t version) {
  // Deterministic across replicas: a pure function of (name, version).
  // The version makes every membership change produce a fresh ID, which
  // is what turns troupe IDs into incarnation numbers (Section 6.2).
  const uint64_t value = (Fnv64(name) << 16) | version;
  return TroupeId{value == 0 ? 1 : value};
}

RingmasterServer::RingmasterServer(core::RpcProcess* process)
    : process_(process) {
  module_ = process_->ExportModule("binding");
  process_->ExportProcedure(
      module_, kRegisterTroupe,
      [this](core::ServerCallContext&,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        co_return Register(args);
      });
  process_->ExportProcedure(
      module_, kAddTroupeMember,
      [this](core::ServerCallContext& ctx,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        co_return co_await AddMember(ctx, args);
      });
  process_->ExportProcedure(
      module_, kRemoveTroupeMember,
      [this](core::ServerCallContext& ctx,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        co_return co_await RemoveMember(ctx, args);
      });
  process_->ExportProcedure(
      module_, kLookupByName,
      [this](core::ServerCallContext&,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        co_return Lookup(args, /*by_id=*/false);
      });
  process_->ExportProcedure(
      module_, kLookupById,
      [this](core::ServerCallContext&,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        co_return Lookup(args, /*by_id=*/true);
      });
  process_->ExportProcedure(
      module_, kRebind,
      [this](core::ServerCallContext&,
             const circus::Bytes& args) -> Task<StatusOr<circus::Bytes>> {
        // rebind(name, stale_id): the stale binding is only a hint
        // (Section 6.1); return the current binding.
        marshal::Reader r(args);
        const std::string name = r.ReadString();
        r.ReadU64();  // the hint; not blindly trusted
        if (!r.AtEnd()) {
          co_return Status(ErrorCode::kProtocolError, "bad rebind args");
        }
        std::optional<Troupe> t = FindByName(name);
        if (!t.has_value()) {
          co_return Status(ErrorCode::kNotFound,
                           "no troupe named " + name);
        }
        co_return EncodeTroupeResult(*t);
      });
  process_->ExportProcedure(
      module_, kEnumerate,
      [this](core::ServerCallContext&,
             const circus::Bytes&) -> Task<StatusOr<circus::Bytes>> {
        marshal::Writer w;
        std::vector<std::string> names;
        names.reserve(by_name_.size());
        for (const auto& [name, entry] : by_name_) {
          names.push_back(name);
        }
        w.WriteSequence(names, [](marshal::Writer& writer,
                                  const std::string& s) {
          writer.WriteString(s);
        });
        co_return w.Take();
      });
  // State transfer for extending the Ringmaster troupe itself.
  process_->SetStateProvider(module_, [this] {
    marshal::Writer w;
    w.WriteU32(static_cast<uint32_t>(by_name_.size()));
    for (const auto& [name, entry] : by_name_) {
      w.WriteString(name);
      w.WriteU16(entry.version);
      WriteTroupe(w, entry.troupe);
    }
    return w.Take();
  });
  // The Ringmaster resolves client troupe IDs from its own registry; no
  // recursive lookup is needed (or possible, for its own troupe).
  process_->SetClientTroupeResolver(
      [this](TroupeId id) -> Task<StatusOr<Troupe>> {
        std::optional<Troupe> t = FindById(id);
        if (!t.has_value()) {
          co_return Status(ErrorCode::kNotFound, "unknown client troupe");
        }
        co_return *t;
      });
}

void RingmasterServer::BootstrapSelf(const core::Troupe& self_troupe) {
  Entry entry;
  entry.version = 1;
  entry.troupe = self_troupe;
  entry.troupe.id = kRingmasterTroupeId;
  id_to_name_[entry.troupe.id] = kRingmasterName;
  by_name_[kRingmasterName] = std::move(entry);
  process_->SetTroupeId(kRingmasterTroupeId);
}

std::optional<Troupe> RingmasterServer::FindByName(
    const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    return std::nullopt;
  }
  return it->second.troupe;
}

std::optional<Troupe> RingmasterServer::FindById(TroupeId id) const {
  auto it = id_to_name_.find(id);
  if (it == id_to_name_.end()) {
    return std::nullopt;
  }
  return FindByName(it->second);
}

StatusOr<circus::Bytes> RingmasterServer::Register(
    const circus::Bytes& args) {
  marshal::Reader r(args);
  const std::string name = r.ReadString();
  Troupe troupe = ReadTroupe(r);
  if (!r.AtEnd()) {
    return Status(ErrorCode::kProtocolError, "bad register args");
  }
  if (by_name_.contains(name)) {
    return Status(ErrorCode::kAlreadyExists,
                  "troupe already registered: " + name);
  }
  Entry entry;
  entry.version = 1;
  entry.troupe = std::move(troupe);
  entry.troupe.id = MakeTroupeId(name, entry.version);
  id_to_name_[entry.troupe.id] = name;
  const TroupeId id = entry.troupe.id;
  by_name_[name] = std::move(entry);
  PublishBindingEvent(process_, obs::EventKind::kTroupeRegistered, id, name);
  return EncodeId(id);
}

Task<Status> RingmasterServer::PropagateTroupeId(
    core::ServerCallContext& ctx, const Troupe& troupe) {
  // set_troupe_id(troupe_id) at troupe (Figure 6.2): every member must
  // learn the new ID. Addressed as an unbound call because the members'
  // current IDs are in flux.
  marshal::Writer w;
  w.WriteU64(troupe.id.value);
  Troupe unbound = troupe;
  unbound.id = TroupeId{};
  StatusOr<circus::Bytes> r = co_await ctx.Call(
      unbound, core::kRuntimeModule, core::kSetTroupeId, w.Take());
  co_return r.status();
}

Task<StatusOr<circus::Bytes>> RingmasterServer::AddMember(
    core::ServerCallContext& ctx, const circus::Bytes& args) {
  marshal::Reader r(args);
  const std::string name = r.ReadString();
  const ModuleAddress member = ReadModuleAddress(r);
  if (!r.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad add_member args");
  }
  Entry& entry = by_name_[name];  // creates on first export (Section 6.3)
  for (const ModuleAddress& m : entry.troupe.members) {
    if (m == member) {
      co_return Status(ErrorCode::kAlreadyExists,
                       "member already in troupe " + name);
    }
  }
  if (entry.version != 0) {
    id_to_name_.erase(entry.troupe.id);
  }
  ++entry.version;
  entry.troupe.members.push_back(member);
  entry.troupe.id = MakeTroupeId(name, entry.version);
  id_to_name_[entry.troupe.id] = name;
  PublishBindingEvent(process_, obs::EventKind::kTroupeMemberAdded,
                      entry.troupe.id, name + " " + member.ToString());
  Status propagate = co_await PropagateTroupeId(ctx, entry.troupe);
  if (!propagate.ok()) {
    CIRCUS_LOG(LogLevel::kWarning)
        << "set_troupe_id propagation for " << name
        << " failed: " << propagate.ToString();
  }
  co_return EncodeId(by_name_[name].troupe.id);
}

Task<StatusOr<circus::Bytes>> RingmasterServer::RemoveMember(
    core::ServerCallContext& ctx, const circus::Bytes& args) {
  marshal::Reader r(args);
  const std::string name = r.ReadString();
  const ModuleAddress member = ReadModuleAddress(r);
  if (!r.AtEnd()) {
    co_return Status(ErrorCode::kProtocolError, "bad remove_member args");
  }
  auto it = by_name_.find(name);
  if (it == by_name_.end()) {
    co_return Status(ErrorCode::kNotFound, "no troupe named " + name);
  }
  Entry& entry = it->second;
  auto pos = std::find(entry.troupe.members.begin(),
                       entry.troupe.members.end(), member);
  if (pos == entry.troupe.members.end()) {
    co_return Status(ErrorCode::kNotFound, "member not in troupe " + name);
  }
  id_to_name_.erase(entry.troupe.id);
  entry.troupe.members.erase(pos);
  ++entry.version;
  entry.troupe.id = MakeTroupeId(name, entry.version);
  id_to_name_[entry.troupe.id] = name;
  PublishBindingEvent(process_, obs::EventKind::kTroupeMemberRemoved,
                      entry.troupe.id, name + " " + member.ToString());
  if (!entry.troupe.members.empty()) {
    Status propagate = co_await PropagateTroupeId(ctx, entry.troupe);
    if (!propagate.ok()) {
      CIRCUS_LOG(LogLevel::kWarning)
          << "set_troupe_id propagation for " << name
          << " failed: " << propagate.ToString();
    }
  }
  co_return EncodeId(it->second.troupe.id);
}

StatusOr<circus::Bytes> RingmasterServer::Lookup(const circus::Bytes& args,
                                                 bool by_id) const {
  marshal::Reader r(args);
  std::optional<Troupe> found;
  if (by_id) {
    const TroupeId id{r.ReadU64()};
    if (!r.AtEnd()) {
      return Status(ErrorCode::kProtocolError, "bad lookup args");
    }
    found = FindById(id);
  } else {
    const std::string name = r.ReadString();
    if (!r.AtEnd()) {
      return Status(ErrorCode::kProtocolError, "bad lookup args");
    }
    found = FindByName(name);
  }
  if (!found.has_value() || found->members.empty()) {
    return Status(ErrorCode::kNotFound, "no such troupe");
  }
  return EncodeTroupeResult(*found);
}

}  // namespace circus::binding
